#ifndef RAFIKI_NET_HTTP_SERVER_H_
#define RAFIKI_NET_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mpsc_ring.h"
#include "common/result.h"
#include "net/event_loop.h"
#include "net/http.h"
#include "net/socket.h"

namespace rafiki::net {

struct HttpServerOptions {
  /// Listening port; 0 asks the kernel for an ephemeral port (read it back
  /// with port()).
  uint16_t port = 0;
  /// Event-loop threads; each owns an epoll instance and a share of the
  /// connections.
  int num_workers = 2;
  /// Threads invoking the request handler. With the async handler API a
  /// handler thread is only occupied while the handler *runs* (it may hand
  /// its ResponseWriter to another subsystem and return immediately), so
  /// in-flight requests are bounded by `max_inflight`, not by this.
  int num_handler_threads = 4;
  /// Requests admitted (response not yet completed) before new ones are
  /// answered 503 directly from the event loop. This is the true
  /// concurrency bound of the async path: an admitted request holds its
  /// slot until its ResponseWriter completes, not until the handler
  /// returns.
  size_t max_inflight = 256;
  /// Pipelined requests admitted per connection before parsing pauses
  /// (responses are still written in request order; this bounds the
  /// per-connection reorder buffer).
  size_t max_pipeline = 16;
  /// Connections idle longer than this (no request in flight, nothing
  /// buffered) are closed.
  double idle_timeout_seconds = 60.0;
  /// Stop() waits this long for in-flight requests — including async
  /// responses not yet completed — and buffered output to drain before
  /// force-closing connections.
  double drain_timeout_seconds = 5.0;
  HttpParserLimits limits;
  int listen_backlog = 128;
  /// When > 0, shrink each accepted socket's SO_SNDBUF (tests use this to
  /// force partial writes through the EPOLLOUT path).
  int send_buffer_bytes = 0;
  /// Run-to-completion mode: handlers are invoked directly on the owning
  /// event-loop thread instead of the handler pool, and completions that
  /// happen inline skip the mailbox + eventfd wakeup entirely. This
  /// removes two thread handoffs per request — the dominant per-request
  /// cost on small machines — but is only safe when every handler is
  /// non-blocking: it must either complete its writer immediately or park
  /// it elsewhere and return. A handler that blocks (e.g. synchronous
  /// inference) stalls the whole event loop.
  bool inline_handlers = false;
};

/// Monotonic counters plus stage-occupancy gauges. Conservation invariant
/// once quiet:
///   requests_total == responses_total, and
///   responses_total == handled + rejected_overload + parse_errors +
///                      rejected_draining.
struct HttpServerStats {
  uint64_t accepted_connections = 0;
  uint64_t requests_total = 0;    // complete requests parsed
  uint64_t responses_total = 0;   // responses produced (any status)
  uint64_t handled = 0;           // completed through a ResponseWriter
  uint64_t rejected_overload = 0; // 503 at the in-flight cap
  uint64_t rejected_draining = 0; // 503 while stopping
  uint64_t parse_errors = 0;      // 4xx/5xx straight from the parser
  uint64_t timed_out_connections = 0;

  /// Gauges (sampled at stats() time) separating the stages of the async
  /// path, so saturation of each is observable independently:
  ///   admission (inflight) -> handler queue -> handler execution
  ///   (handler_busy) -> async completion wait (async_pending).
  size_t inflight = 0;        // admitted, response not yet completed
  uint64_t inflight_peak = 0; // high-watermark of `inflight` since Start()
  size_t handler_queue = 0;   // parsed requests waiting for a handler thread
  size_t handler_busy = 0;    // threads currently inside the handler
  /// Requests whose handler has returned but whose ResponseWriter has not
  /// completed yet — the continuation is parked in another subsystem (e.g.
  /// an inference batch queue).
  size_t async_pending = 0;
};

/// From-scratch epoll HTTP/1.1 server (the Figure 2/18 front door):
///
///   * one acceptor thread accepts and hands sockets round-robin to
///     `num_workers` event-loop threads;
///   * each worker owns its connections exclusively — nonblocking reads
///     into a per-connection buffer, an incremental HttpParser, and a
///     per-connection scatter-gather output queue flushed via EPOLLOUT on
///     partial writes;
///   * complete requests are admitted against `max_inflight` (overflow
///     answered 503 inline) and dispatched to a handler pool; the handler
///     receives a ResponseWriter it may complete later from any thread —
///     the response is posted back to the owning worker through a mailbox
///     + eventfd;
///   * keep-alive and pipelining: up to `max_pipeline` requests per
///     connection may be in flight at once; completions arriving out of
///     order are buffered and written strictly in request order;
///   * Stop() drains: accepting ends, new requests get 503, in-flight
///     requests — including async responses whose handler already
///     returned — are completed and written out, then connections close.
///
/// Data-plane memory model: every request rides in a pooled ResponseSlot
/// (request + response + serialized header block). Slots are recycled
/// through per-worker free lists, responses are serialized in place and
/// written with sendmsg scatter-gather (header iovec + body iovec), so a
/// steady-state keep-alive round trip performs no heap allocations.
///
/// Handlers run concurrently on the pool; they must be thread-safe.
class HttpServer {
 public:
  struct ResponseSlot;

  /// Synchronous handler: the returned response completes the request.
  /// Runs as a thin adapter over the async API.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct WriterState;

  /// Completion handle for one request. Copyable (copies share the same
  /// one-shot state — the first Complete() wins, later calls are no-ops)
  /// so it can be captured in std::function continuations. Thread-safe:
  /// Complete() may be called from any thread, including after the server
  /// started draining (the response is still delivered) or after Stop()
  /// finished (the completion is dropped safely). If every copy is
  /// destroyed without completing, a 500 is generated so the connection
  /// and the admission slot are not leaked.
  class ResponseWriter {
   public:
    ResponseWriter() = default;

    /// Completes the request; one-shot, thread-safe.
    void Complete(const HttpResponse& response);

    /// The request's pooled response object, for filling in place (avoids
    /// copying the body into the slot at completion). Only valid on a
    /// writer that has not completed; passing it to Complete() is detected
    /// and skips the copy.
    HttpResponse& response() const;

    bool completed() const;
    bool valid() const { return state_ != nullptr; }

   private:
    friend class HttpServer;
    explicit ResponseWriter(std::shared_ptr<WriterState> state)
        : state_(std::move(state)) {}
    std::shared_ptr<WriterState> state_;
  };

  /// Asynchronous handler: may complete the writer inline or hand it to
  /// another thread and return. Returning without completing parks the
  /// request (counted in the async_pending gauge) until some owner of the
  /// writer completes it.
  using AsyncHandler = std::function<void(const HttpRequest&, ResponseWriter)>;

  HttpServer(Handler handler, HttpServerOptions options = {});
  HttpServer(AsyncHandler handler, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the acceptor/worker/handler threads.
  Status Start();

  /// Graceful drain-then-stop; idempotent. Safe to call from any thread
  /// except a handler.
  void Stop();

  /// Bound port (valid after Start()).
  uint16_t port() const { return port_; }

  bool running() const { return running_; }

  HttpServerStats stats() const;

  /// One pooled request/response arena. The request is parsed into it, the
  /// response is built and serialized in it, and its bytes are written to
  /// the socket straight from it; afterwards it returns to a per-worker
  /// free list with all string capacities intact.
  ///
  /// `holds` counts outstanding users: the handler (reading `request`
  /// until it returns) and the response path (WriterState -> completion
  /// mailbox -> in-order window -> output queue -> flushed). Whoever
  /// releases the last hold recycles (or deletes) the slot; this is what
  /// makes it safe for a completion to race the handler's return.
  struct ResponseSlot {
    HttpRequest request;
    HttpResponse response;
    std::string head;  // serialized status line + headers (wire form)
    std::atomic<int> holds{0};
  };

 private:
  enum class Phase { kRunning, kDraining, kForceStop };

  /// One response ready to be written; `seq` orders it among its
  /// connection's pipelined requests. The slot travels by raw pointer —
  /// ownership is tracked by ResponseSlot::holds.
  struct Completion {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    ResponseSlot* slot = nullptr;
    bool keep_alive = true;
  };

  /// A response waiting its turn in the per-connection in-order window,
  /// indexed by seq & (window size - 1).
  struct WindowEntry {
    ResponseSlot* slot = nullptr;
    bool keep_alive = true;
  };

  /// A response being written: `off` is the byte offset already sent of
  /// head + body viewed as one contiguous stream.
  struct OutItem {
    ResponseSlot* slot = nullptr;
    size_t off = 0;
    bool close_after = false;
  };

  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    /// Raw input; consumed bytes are tracked by `in_off` (no memmove) and
    /// the buffer is reset once fully parsed.
    std::string inbuf;
    size_t in_off = 0;
    HttpParser parser;
    uint64_t next_seq = 0;   // sequence assigned to the next parsed request
    uint64_t next_send = 0;  // sequence of the next response to emit
    /// Responses completed out of request order, direct-indexed by
    /// sequence (valid because parsing pauses at max_pipeline pending).
    std::vector<WindowEntry> window;
    uint64_t window_mask = 0;
    /// In-order responses being flushed, front partially written first.
    RingDeque<OutItem> outq;
    /// No further requests will be parsed (parse error, Connection: close,
    /// or a drain rejection); pending responses still go out in order.
    bool parse_done = false;
    bool close_after_write = false;
    bool peer_closed = false;
    bool want_read = true;
    bool want_write = false;
    /// Queued in the worker's flush list for this loop tick. Responses
    /// completed within one tick accumulate in `outq` and go out in a
    /// single gather write at the end of the tick, instead of one
    /// sendmsg per completion.
    bool flush_pending = false;
    double last_activity = 0.0;
    /// One-shot idle timer on the worker's wheel. The hot path only
    /// refreshes `last_activity`; when the timer fires it either closes a
    /// truly idle connection or re-arms itself for the remaining window
    /// (lazy re-arm: zero timer churn per request).
    TimerId idle_timer = 0;

    Connection(HttpParserLimits limits, size_t window_size)
        : parser(limits), window(window_size), window_mask(window_size - 1) {}
    /// Requests parsed whose responses have not been emitted yet.
    size_t pending() const { return next_seq - next_send; }
    bool busy() const { return pending() > 0 || !outq.empty(); }
  };

  struct Work {
    int worker = 0;
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    bool keep_alive = true;
    ResponseSlot* slot = nullptr;
  };

  struct Worker {
    int index = 0;
    /// The worker's reactor: fd watchers for its connections, the timer
    /// wheel carrying their idle deadlines, and the wake eventfd behind
    /// Wake(). Mailbox drain runs as the loop's tick-begin hook; the
    /// gather flush, work-batch handoff, and drain-phase check run as the
    /// tick-end hook.
    std::unique_ptr<EventLoop> loop;
    std::thread thread;
    std::mutex mu;  // guards the three mailboxes below
    std::vector<int> pending_fds;
    std::vector<Completion> completions;
    /// Slots whose last hold was released off-worker; recycled here.
    std::vector<ResponseSlot*> returned;
    /// Everything below is owned exclusively by the worker thread.
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
    /// Free list of recycled slots (capacity-warm arenas).
    std::vector<ResponseSlot*> slot_pool;
    /// Admitted work gathered during one event-loop tick, pushed to the
    /// handler queue with a single lock + notify.
    std::vector<Work> work_batch;
    // Drain scratch: swapped with the mailboxes so both sides keep their
    // vector capacity (no per-tick allocation).
    std::vector<int> fds_scratch;
    std::vector<Completion> completions_scratch;
    std::vector<ResponseSlot*> returned_scratch;
    /// Completions produced on this worker's own thread (inline_handlers
    /// fast path); never locked — only the owning thread touches it.
    RingDeque<Completion> inline_completions;
    /// Connections (by id) with staged responses awaiting the end-of-tick
    /// gather flush; guarded by the owning thread only.
    std::vector<uint64_t> flush_queue;
    std::atomic<bool> exited{false};
  };

 public:
  /// Shared between the server and every outstanding ResponseWriter; the
  /// server pointer is nulled under `mu` during Stop(), after which late
  /// completions are dropped instead of touching freed workers.
  struct AsyncCore {
    std::mutex mu;
    HttpServer* server = nullptr;
  };

  /// One-shot completion state behind ResponseWriter. `flags` bit 0 is
  /// "completed", bit 1 is "handler returned" (used to keep the
  /// async_pending gauge exact under the completion/return race). Holds
  /// the response-path reference on `slot` until Complete() posts it.
  struct WriterState {
    static constexpr int kCompleted = 1;
    static constexpr int kHandlerReturned = 2;

    std::shared_ptr<AsyncCore> core;
    ResponseSlot* slot = nullptr;
    int worker = 0;
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    bool keep_alive = true;
    std::atomic<int> flags{0};

    void Complete(const HttpResponse& response);
    ~WriterState();  // completes with 500 if nobody ever completed
  };

 private:
  void AcceptLoop();
  void WorkerLoop(int index);
  void HandlerLoop();

  void Wake(Worker& w);
  void DrainMailbox(Worker& w);
  /// Applies one completed response: files it in its connection's in-order
  /// window, pumps output, and resumes reading/parsing. May close the
  /// connection.
  void ApplyCompletion(Worker& w, const Completion& done);
  /// Applies completions produced on this worker's own thread (the
  /// inline_handlers fast path) until none remain.
  void DrainInlineCompletions(Worker& w);
  /// Runs the handler for one admitted request on the calling (worker)
  /// thread; inline completions land in w.inline_completions.
  void RunHandlerInline(Worker& w, const Work& work);
  void AddConnection(Worker& w, int fd);
  void CloseConnection(Worker& w, Connection& c);
  /// Pushes the connection's current read/write interest to the reactor.
  void UpdateInterest(Worker& w, Connection& c);
  /// Reactor callback for one connection's readiness events.
  void OnConnEvent(Worker& w, uint64_t conn_id, uint32_t events);
  /// Idle deadline fired: close if genuinely idle, else re-arm for the
  /// time remaining since `last_activity`.
  void OnIdleTimer(Worker& w, uint64_t conn_id);
  void OnReadable(Worker& w, Connection& c);
  void TryParse(Worker& w, Connection& c);

  ResponseSlot* AcquireSlot(Worker& w);
  /// Returns a slot to the worker's free list with capacities intact.
  void RecycleSlot(Worker& w, ResponseSlot* slot);
  /// Drops one hold; recycles on the last release (worker thread only).
  void ReleaseSlotHold(Worker& w, ResponseSlot* slot);
  /// Flushes the tick's admitted work to the handler queue in one lock.
  void FlushWorkBatch(Worker& w);

  /// Queues the response already built in `slot` as the completion of
  /// sequence `seq` (event-loop responses: parse errors, 503s) and pumps
  /// in-order output. Takes over the slot's single hold.
  void QueueSlotResponse(Worker& w, Connection& c, uint64_t seq,
                         ResponseSlot* slot, bool keep_alive);
  /// Moves consecutive ready completions into the output queue and
  /// flushes. May close (destroy) the connection.
  void PumpResponses(Worker& w, Connection& c);
  void FlushPendingWrites(Worker& w);
  void FlushWrite(Worker& w, Connection& c);
  double Now() const;

  AsyncHandler async_handler_;
  HttpServerOptions opts_;
  Socket listener_;
  uint16_t port_ = 0;
  bool running_ = false;

  std::shared_ptr<AsyncCore> core_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread acceptor_;
  std::vector<std::thread> handler_threads_;

  mutable std::mutex work_mu_;
  std::condition_variable work_cv_;
  RingDeque<Work> work_;
  bool stop_handlers_ = false;  // guarded by work_mu_

  std::atomic<Phase> phase_{Phase::kRunning};
  std::atomic<bool> stop_accepting_{false};
  std::atomic<size_t> inflight_{0};
  std::atomic<uint64_t> inflight_peak_{0};
  std::atomic<size_t> handler_busy_{0};
  std::atomic<int64_t> async_pending_{0};
  std::atomic<uint64_t> next_conn_id_{1};

  // Stats counters.
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> handled_{0};
  std::atomic<uint64_t> rejected_overload_{0};
  std::atomic<uint64_t> rejected_draining_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> timed_out_{0};

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace rafiki::net

#endif  // RAFIKI_NET_HTTP_SERVER_H_
