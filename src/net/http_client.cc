#include "net/http_client.h"

#include <utility>

#include "common/string_util.h"

namespace rafiki::net {

HttpClient::HttpClient(std::string host, uint16_t port,
                       double timeout_seconds)
    : host_(std::move(host)), port_(port), timeout_(timeout_seconds) {}

Status HttpClient::EnsureConnected() {
  if (sock_.valid()) return Status::OK();
  RAFIKI_ASSIGN_OR_RETURN(sock_, ConnectTcp(host_, port_, timeout_));
  return Status::OK();
}

Result<HttpResponse> HttpClient::RoundTrip(const std::string& wire) {
  RAFIKI_RETURN_IF_ERROR(SendAll(sock_.fd(), wire.data(), wire.size()));
  HttpResponseParser parser;
  char buf[16 * 1024];
  while (!parser.done() && !parser.failed()) {
    RAFIKI_ASSIGN_OR_RETURN(size_t n, RecvSome(sock_.fd(), buf, sizeof(buf)));
    if (n == 0) {
      parser.FinishEof();
      break;
    }
    parser.Feed(buf, n);
  }
  if (parser.failed()) {
    sock_.Close();
    return Status::Internal(
        StrFormat("bad response: %s", parser.error().c_str()));
  }
  HttpResponse response;
  response.status = parser.status();
  response.body = parser.body();
  if (!parser.keep_alive()) sock_.Close();
  return response;
}

Result<HttpResponse> HttpClient::Request(const std::string& method,
                                         const std::string& target,
                                         const std::string& body) {
  bool was_connected = sock_.valid();
  RAFIKI_RETURN_IF_ERROR(EnsureConnected());
  std::string wire =
      SerializeRequest(method, target, host_, body, /*keep_alive=*/true);
  Result<HttpResponse> response = RoundTrip(wire);
  if (response.ok()) return response;
  // A reused connection may have been closed server-side (idle timeout)
  // between requests; retry exactly once on a fresh connection.
  if (!was_connected) return response;
  sock_.Close();
  RAFIKI_RETURN_IF_ERROR(EnsureConnected());
  return RoundTrip(wire);
}

}  // namespace rafiki::net
