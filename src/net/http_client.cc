#include "net/http_client.h"

#include <utility>

#include "common/string_util.h"

namespace rafiki::net {

HttpClient::HttpClient(std::string host, uint16_t port,
                       double timeout_seconds)
    : host_(std::move(host)), port_(port), timeout_(timeout_seconds) {}

Status HttpClient::EnsureConnected() {
  if (sock_.valid()) return Status::OK();
  RAFIKI_ASSIGN_OR_RETURN(sock_, ConnectTcp(host_, port_, timeout_));
  return Status::OK();
}

Result<int> HttpClient::RoundTrip() {
  // One deadline spans the whole response: SO_RCVTIMEO only bounds each
  // recv(), so a server dribbling one byte per timeout window could stall
  // the caller indefinitely without this.
  Deadline deadline = Deadline::After(timeout_);
  RAFIKI_RETURN_IF_ERROR(WriteFull(sock_.fd(), wire_.data(), wire_.size()));
  parser_.Reset();
  char buf[16 * 1024];
  while (!parser_.done() && !parser_.failed()) {
    Status readable = WaitReadable(sock_.fd(), deadline);
    if (!readable.ok()) {
      sock_.Close();  // a half-read response cannot be kept alive
      return readable;
    }
    RAFIKI_ASSIGN_OR_RETURN(size_t n, RecvSome(sock_.fd(), buf, sizeof(buf)));
    if (n == 0) {
      parser_.FinishEof();
      break;
    }
    parser_.Feed(buf, n);
  }
  if (parser_.failed()) {
    sock_.Close();
    return Status::Internal(
        StrFormat("bad response: %s", parser_.error().c_str()));
  }
  if (!parser_.keep_alive()) sock_.Close();
  return parser_.status();
}

Result<int> HttpClient::RequestView(const std::string& method,
                                    const std::string& target,
                                    const std::string& body) {
  bool was_connected = sock_.valid();
  RAFIKI_RETURN_IF_ERROR(EnsureConnected());
  SerializeRequestTo(method, target, host_, body, /*keep_alive=*/true,
                     &wire_);
  Result<int> status = RoundTrip();
  if (status.ok()) return status;
  // A reused connection may have been closed server-side (idle timeout)
  // between requests; retry exactly once on a fresh connection. A deadline
  // expiry is not that case — retrying would just double the wait.
  if (!was_connected ||
      status.status().code() == StatusCode::kDeadlineExceeded) {
    return status;
  }
  sock_.Close();
  RAFIKI_RETURN_IF_ERROR(EnsureConnected());
  return RoundTrip();
}

Result<HttpResponse> HttpClient::Request(const std::string& method,
                                         const std::string& target,
                                         const std::string& body) {
  RAFIKI_ASSIGN_OR_RETURN(int status, RequestView(method, target, body));
  HttpResponse response;
  response.status = status;
  response.body = parser_.body();
  return response;
}

}  // namespace rafiki::net
