#include "data/dataset.h"
#include "gtest/gtest.h"
#include "nn/loss.h"
#include "rafiki/rafiki.h"
#include "sql/query.h"

namespace rafiki::api {
namespace {

data::Dataset EasyTask(uint64_t seed = 7) {
  data::SyntheticTaskOptions options;
  options.num_classes = 3;
  options.samples_per_class = 60;
  options.input_dim = 12;
  options.separation = 5.0;
  options.spread = 0.8;
  options.seed = seed;
  return data::MakeSyntheticTask(options);
}

TrainConfig FastTrainConfig() {
  TrainConfig config;
  config.dataset = "easy";
  config.input_shape = {12};
  config.output_shape = {3};
  config.hyper.max_trials = 4;
  config.hyper.max_epochs_per_trial = 8;
  config.hyper.early_stop_patience = 4;
  config.num_workers = 2;
  return config;
}

TEST(RafikiE2eTest, ImportDownloadRoundTrip) {
  Rafiki rafiki;
  data::Dataset d = EasyTask();
  auto handle = rafiki.ImportDataset("easy", d);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle.value(), "datasets/easy");
  auto back = rafiki.DownloadDataset("easy");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), d.size());
  EXPECT_TRUE(rafiki.DownloadDataset("ghost").status().IsNotFound());
  EXPECT_TRUE(rafiki.ImportDataset("", d).status().IsInvalidArgument());
}

TEST(RafikiE2eTest, TrainDeployQueryPipeline) {
  // The full Figure 2 flow: import -> Train -> get_models -> Inference ->
  // query, all in one process.
  Rafiki rafiki;
  ASSERT_TRUE(rafiki.ImportDataset("easy", EasyTask()).ok());

  auto job = rafiki.Train(FastTrainConfig());
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  auto info = rafiki.WaitJob(job.value());
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->done);
  EXPECT_EQ(info->trials_finished, 4);
  EXPECT_GT(info->best_performance, 0.5);

  auto models = rafiki.GetModels(job.value());
  ASSERT_TRUE(models.ok()) << models.status().ToString();
  ASSERT_EQ(models->size(), 1u);
  EXPECT_GT((*models)[0].accuracy, 0.5);

  auto deployed = rafiki.Deploy(*models);
  ASSERT_TRUE(deployed.ok());

  // Query every row of the task data (same class centers; the job only
  // saw a 70% training split of it).
  data::Dataset test = EasyTask(/*seed=*/7);
  auto predictions = rafiki.QueryBatch(deployed.value(), test.x);
  ASSERT_TRUE(predictions.ok());
  int64_t correct = 0;
  for (int64_t i = 0; i < test.size(); ++i) {
    if ((*predictions)[static_cast<size_t>(i)].label ==
        test.labels[static_cast<size_t>(i)]) {
      ++correct;
    }
  }
  double accuracy =
      static_cast<double>(correct) / static_cast<double>(test.size());
  EXPECT_GT(accuracy, 0.5) << "deployed model should generalize";

  // Single-row query variant.
  Tensor row({12});
  for (int64_t i = 0; i < 12; ++i) row.at(i) = test.x.at(i);
  auto one = rafiki.Query(deployed.value(), row);
  ASSERT_TRUE(one.ok());
  EXPECT_GE(one->label, 0);
  EXPECT_LT(one->label, 3);

  ASSERT_TRUE(rafiki.Undeploy(deployed.value()).ok());
  EXPECT_TRUE(rafiki.Query(deployed.value(), row).status().IsNotFound());
}

TEST(RafikiE2eTest, TrainValidatesConfig) {
  Rafiki rafiki;
  ASSERT_TRUE(rafiki.ImportDataset("easy", EasyTask()).ok());
  TrainConfig config = FastTrainConfig();
  config.dataset = "ghost";
  EXPECT_TRUE(rafiki.Train(config).status().IsNotFound());
  config = FastTrainConfig();
  config.output_shape = {99};  // dataset has 3 classes
  EXPECT_TRUE(rafiki.Train(config).status().IsInvalidArgument());
  EXPECT_TRUE(rafiki.GetJobInfo("nope").status().IsNotFound());
  EXPECT_TRUE(rafiki.Deploy({}).status().IsInvalidArgument());
}

TEST(RafikiE2eTest, GetModelsRequiresFinishedJob) {
  Rafiki rafiki;
  ASSERT_TRUE(rafiki.ImportDataset("easy", EasyTask()).ok());
  TrainConfig config = FastTrainConfig();
  config.hyper.max_trials = 8;
  auto job = rafiki.Train(config);
  ASSERT_TRUE(job.ok());
  // Either still training (FailedPrecondition) or already done (ok) —
  // never a crash or wrong-job result.
  auto models = rafiki.GetModels(job.value());
  if (!models.ok()) {
    EXPECT_EQ(models.status().code(), StatusCode::kFailedPrecondition);
  }
  ASSERT_TRUE(rafiki.WaitJob(job.value()).ok());
  EXPECT_TRUE(rafiki.GetModels(job.value()).ok());
}

TEST(RafikiE2eTest, BuildMlpFromCheckpointValidates) {
  ps::ModelCheckpoint empty;
  EXPECT_TRUE(BuildMlpFromCheckpoint(empty).status().IsInvalidArgument());
  ps::ModelCheckpoint missing_bias;
  missing_bias.params.emplace_back("fc0/weight", Tensor({4, 2}));
  EXPECT_TRUE(
      BuildMlpFromCheckpoint(missing_bias).status().IsInvalidArgument());

  ps::ModelCheckpoint good;
  good.params.emplace_back("fc0/weight", Tensor::Full({4, 2}, 0.5f));
  good.params.emplace_back("fc0/bias", Tensor::Full({1, 2}, 0.1f));
  auto net = BuildMlpFromCheckpoint(good);
  ASSERT_TRUE(net.ok());
  Tensor x = Tensor::Full({1, 4}, 1.0f);
  Tensor y = net->Forward(x, false);
  EXPECT_NEAR(y.at(0), 4 * 0.5f + 0.1f, 1e-5f);
}

TEST(RafikiE2eTest, SqlUdfCallsDeployedModel) {
  // The §8 case study wired end-to-end: a SQL query whose UDF calls the
  // deployed Rafiki model to classify the referenced feature rows.
  Rafiki rafiki;
  data::Dataset d = EasyTask();
  ASSERT_TRUE(rafiki.ImportDataset("easy", d).ok());
  auto job = rafiki.Train(FastTrainConfig());
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(rafiki.WaitJob(job.value()).ok());
  auto models = rafiki.GetModels(job.value());
  ASSERT_TRUE(models.ok());
  auto deployed = rafiki.Deploy(*models);
  ASSERT_TRUE(deployed.ok());

  // Table rows reference dataset rows by index (the "image_path").
  sql::Table log("foodlog", {{"user_id", sql::ColumnType::kInteger, true},
                             {"age", sql::ColumnType::kInteger, true},
                             {"row_ref", sql::ColumnType::kInteger, true}});
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(log.Insert(sql::Row{sql::Value{i},
                                    sql::Value{int64_t{20 + 3 * i}},
                                    sql::Value{i}})
                    .ok());
  }

  std::string infer_id = deployed.value();
  sql::ScalarUdf classify = [&](const sql::Value& v) -> sql::Value {
    int64_t row = std::get<int64_t>(v);
    Tensor features({1, d.x.dim(1)});
    std::copy(d.x.data() + row * d.x.dim(1),
              d.x.data() + (row + 1) * d.x.dim(1), features.data());
    auto pred = rafiki.Query(infer_id, features);
    if (!pred.ok()) return sql::Value{};
    return sql::Value{pred->label};
  };

  sql::Query q(&log);
  q.Select({.column = "row_ref", .udf = classify, .alias = "food_class"})
      .Where(sql::ColumnCompare(log, "age", ">", sql::Value{int64_t{52}}))
      .GroupByCount(0);
  auto rs = q.Execute();
  ASSERT_TRUE(rs.ok());
  // age > 52 <=> 20 + 3i > 52 <=> i >= 11 -> 9 rows, 9 UDF calls.
  EXPECT_EQ(rs->udf_calls, 9u);
  int64_t total = 0;
  for (const sql::Row& row : rs->rows) {
    total += std::get<int64_t>(row[1]);
  }
  EXPECT_EQ(total, 9);
}

}  // namespace
}  // namespace rafiki::api
