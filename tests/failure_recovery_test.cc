// Failure-injection coverage for §6.3: workers are stateless and can be
// killed/restarted at will; masters checkpoint their (small) state and
// recover from it.

#include <chrono>
#include <thread>

#include "cluster/message_bus.h"
#include "cluster/node_manager.h"
#include "gtest/gtest.h"
#include "ps/parameter_server.h"
#include "storage/blob_store.h"
#include "trainer/surrogate.h"
#include "tuning/study.h"
#include "tuning/trial_advisor.h"

namespace rafiki::tuning {
namespace {

HyperSpace MakeSpace() {
  HyperSpace space;
  EXPECT_TRUE(space.AddRangeKnob("learning_rate", KnobDtype::kFloat, 1e-4,
                                 1.0, /*log_scale=*/true)
                  .ok());
  EXPECT_TRUE(
      space.AddRangeKnob("momentum", KnobDtype::kFloat, 0.0, 0.99).ok());
  return space;
}

TEST(FailureRecoveryTest, WorkerKilledMidStudyIsRecoverable) {
  // Kill a worker while it is training, then start a replacement with the
  // same endpoint name. The master treats the replacement's kRequest as
  // recovery (the in-flight trial is lost) and the study still terminates
  // with every advisor-issued trial accounted for.
  HyperSpace space = MakeSpace();
  RandomSearchAdvisor advisor(&space, 10, 1);
  trainer::SurrogateOptions surrogate_options;
  surrogate_options.epoch_cost_seconds = 1.0;
  trainer::SurrogateFactory factory(surrogate_options);
  cluster::MessageBus bus;
  ps::ParameterServer ps;

  StudyConfig config;
  config.max_trials = 10;
  config.max_epochs_per_trial = 30;
  config.num_workers = 2;
  config.early_stop_patience = 5;

  StudyMaster master("fr", config, &advisor, &bus, nullptr);
  StudyWorker worker0("fr", "w0", config, &factory, &bus, &ps, 11);
  StudyWorker worker1("fr", "w1", config, &factory, &bus, &ps, 12);
  // The replacement worker reuses w1's endpoint name (same pod identity).
  StudyWorker worker1b("fr", "w1", config, &factory, &bus, &ps, 13);

  cluster::NodeManager manager;
  ASSERT_TRUE(manager
                  .StartContainer("master", [&](cluster::CancelToken& t) {
                    master.Run(t);
                  })
                  .ok());
  ASSERT_TRUE(manager
                  .StartContainer("w0", [&](cluster::CancelToken& t) {
                    worker0.Run(t);
                  })
                  .ok());
  ASSERT_TRUE(manager
                  .StartContainer("w1", [&](cluster::CancelToken& t) {
                    worker1.Run(t);
                  })
                  .ok());

  // Let some training happen, then kill w1 mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(manager.KillContainer("w1").ok());
  // Its endpoint may be left registered; the replacement tolerates that.
  ASSERT_TRUE(manager
                  .StartContainer("w1b", [&](cluster::CancelToken& t) {
                    worker1b.Run(t);
                  })
                  .ok());

  ASSERT_TRUE(manager.WaitContainer("w0").ok());
  ASSERT_TRUE(manager.WaitContainer("w1b").ok());
  ASSERT_TRUE(manager.WaitContainer("master").ok());

  // All 10 issued trials finished (the killed one counts as lost and was
  // reissued as a fresh trial by the advisor only if budget remained; the
  // invariant is the master terminated and recorded <= 10, >= 8 trials).
  EXPECT_GE(master.stats().trials.size(), 8u);
  EXPECT_LE(master.stats().trials.size(), 10u);
  EXPECT_GT(master.stats().best_performance, 0.0);
}

TEST(FailureRecoveryTest, MasterRestartResumesFromCheckpoint) {
  // Run a first study half-way, kill the master, then bring up a NEW
  // master that restores from the checkpoint store and finishes the
  // remaining budget.
  HyperSpace space = MakeSpace();
  RandomSearchAdvisor advisor(&space, 8, 2);
  trainer::SurrogateOptions surrogate_options;
  trainer::SurrogateFactory factory(surrogate_options);
  cluster::MessageBus bus;
  ps::ParameterServer ps;
  storage::BlobStore store;

  StudyConfig config;
  config.max_trials = 8;
  config.max_epochs_per_trial = 10;
  config.num_workers = 1;
  config.checkpoint_every_events = 1;

  StudyMaster master1("mr", config, &advisor, &bus, &store);
  StudyWorker worker("mr", "w0", config, &factory, &bus, &ps, 21);

  cluster::NodeManager manager;
  ASSERT_TRUE(manager
                  .StartContainer("master", [&](cluster::CancelToken& t) {
                    master1.Run(t);
                  })
                  .ok());
  ASSERT_TRUE(manager
                  .StartContainer("w0", [&](cluster::CancelToken& t) {
                    worker.Run(t);
                  })
                  .ok());
  // Kill the master after some progress.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  ASSERT_TRUE(manager.KillContainer("master").ok());
  ASSERT_TRUE(store.Exists("study/mr/master_ckpt"));

  // Recovered master: restores state, drains the worker.
  StudyMaster master2("mr", config, &advisor, &bus, &store);
  ASSERT_TRUE(master2.RestoreFromCheckpoint().ok());
  ASSERT_TRUE(manager
                  .StartContainer("master2", [&](cluster::CancelToken& t) {
                    master2.Run(t);
                  })
                  .ok());
  ASSERT_TRUE(manager.WaitContainer("w0").ok());
  ASSERT_TRUE(manager.WaitContainer("master2").ok());

  // The recovered master remembers the best performance from before the
  // crash (its stats carry over via the checkpoint).
  EXPECT_GT(master2.stats().best_performance, 0.0);
}

TEST(FailureRecoveryTest, StudySurvivesWorkerThatNeverStarts) {
  // One of the declared workers never comes up: the master still finishes
  // (the live worker eventually drains the trial budget and the master
  // exits when every ACTIVE worker retired).
  HyperSpace space = MakeSpace();
  RandomSearchAdvisor advisor(&space, 4, 3);
  trainer::SurrogateFactory factory(trainer::SurrogateOptions{});
  cluster::MessageBus bus;
  ps::ParameterServer ps;

  StudyConfig config;
  config.max_trials = 4;
  config.max_epochs_per_trial = 6;
  config.num_workers = 1;  // declare only the live one

  StudyStats stats = RunStudy("solo", config, &advisor, &factory, &bus, &ps,
                              nullptr, 1, 31);
  EXPECT_EQ(stats.trials.size(), 4u);
}

}  // namespace
}  // namespace rafiki::tuning
