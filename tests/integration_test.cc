// Cross-module integration tests beyond the facade e2e suite:
//  * CoStudy over the REAL MLP trainer with an architecture knob, so warm
//    starts must shape-match across different hidden widths through the
//    parameter server (§4.2.2's architecture-tuning scenario);
//  * Conv2D training on the synthetic image task through the
//    preprocessing pipeline (Table 1 group 1 + group 2 together);
//  * the facade with every advisor kind.

#include <memory>

#include "cluster/message_bus.h"
#include "data/dataset.h"
#include "data/preprocess.h"
#include "gtest/gtest.h"
#include "nn/loss.h"
#include "nn/net.h"
#include "nn/sgd.h"
#include "ps/parameter_server.h"
#include "rafiki/rafiki.h"
#include "trainer/real_trainer.h"
#include "tuning/study.h"
#include "tuning/trial_advisor.h"

namespace rafiki {
namespace {

TEST(IntegrationTest, CoStudyWithArchitectureKnobOnRealTrainer) {
  data::SyntheticTaskOptions task;
  task.num_classes = 3;
  task.samples_per_class = 60;
  task.input_dim = 12;
  task.separation = 4.0;
  data::Dataset all = data::MakeSyntheticTask(task);
  Rng rng(3);
  data::DataSplits splits = data::SplitDataset(all, 0.7, 0.3, rng);

  tuning::HyperSpace space;
  ASSERT_TRUE(space.AddRangeKnob("learning_rate", tuning::KnobDtype::kFloat,
                                 5e-3, 0.3, /*log_scale=*/true)
                  .ok());
  ASSERT_TRUE(space.AddRangeKnob("init_std", tuning::KnobDtype::kFloat,
                                 1e-2, 0.3, /*log_scale=*/true)
                  .ok());
  // Architecture knob: warm starts across widths exercise shape-matched
  // parameter reuse (mismatched layers keep their random init).
  ASSERT_TRUE(
      space.AddNumericCategoricalKnob("hidden_units", {16, 32, 64}).ok());

  tuning::RandomSearchAdvisor advisor(&space, 10, 5);
  trainer::RealTrainerOptions trainer_options;
  trainer::RealTrainerFactory factory(&splits.train, &splits.validation,
                                      trainer_options);
  cluster::MessageBus bus;
  ps::ParameterServer ps;
  tuning::StudyConfig config;
  config.max_trials = 10;
  config.max_epochs_per_trial = 6;
  config.collaborative = true;
  config.alpha_init = 0.5;  // warm start aggressively
  config.alpha_decay = 0.8;
  tuning::StudyStats stats =
      tuning::RunStudy("arch", config, &advisor, &factory, &bus, &ps,
                       nullptr, /*num_workers=*/2, /*seed=*/9);

  EXPECT_EQ(stats.trials.size(), 10u);
  EXPECT_GT(stats.best_performance, 0.6);
  int warm = 0;
  for (const auto& t : stats.trials) warm += t.warm_started;
  EXPECT_GT(warm, 0);
  // The PS holds the winning checkpoint for instant deployment.
  EXPECT_TRUE(ps.GetModel("study/arch/best").ok());
}

TEST(IntegrationTest, ConvNetLearnsImagesThroughPipeline) {
  data::SyntheticImageOptions image_options;
  image_options.num_classes = 3;
  image_options.samples_per_class = 30;
  image_options.channels = 1;
  image_options.height = 8;
  image_options.width = 8;
  image_options.noise = 0.2;
  data::Dataset images = data::MakeSyntheticImages(image_options);

  // Table 1 group 1 pipeline: standardize + light augmentation.
  std::vector<float> mean, stddev;
  data::ComputeChannelStats(images.x, &mean, &stddev);
  data::Pipeline pipeline;
  pipeline.Add(std::make_unique<data::NormalizeOp>(mean, stddev));
  pipeline.Add(std::make_unique<data::PadCropOp>(1));
  pipeline.Add(std::make_unique<data::RandomFlipOp>(0.5));

  Rng rng(11);
  nn::Net net;
  net.Add(std::make_unique<nn::Conv2D>(1, 4, 3, /*padding=*/1, 0.2f, rng));
  net.Add(std::make_unique<nn::Relu>());
  net.Add(std::make_unique<nn::Flatten>());
  net.Add(std::make_unique<nn::Linear>(4 * 8 * 8, 3, 0.1f, rng));

  nn::SgdOptions sgd_options;
  sgd_options.learning_rate = 0.05;
  sgd_options.momentum = 0.9;
  nn::Sgd sgd(sgd_options);

  // Evaluate before.
  Tensor eval = images.x;
  double before = nn::Accuracy(net.Forward(eval, false), images.labels);

  data::BatchIterator batches(images, 16, Rng(13));
  for (int epoch = 0; epoch < 8; ++epoch) {
    batches.Reset();
    Tensor x;
    std::vector<int64_t> labels;
    while (batches.Next(&x, &labels)) {
      pipeline.Apply(&x, rng);
      net.ZeroGrad();
      nn::LossResult loss = nn::SoftmaxCrossEntropy(net.Forward(x, true),
                                                    labels);
      net.Backward(loss.grad);
      sgd.Step(net.Params());
    }
  }
  double after = nn::Accuracy(net.Forward(eval, false), images.labels);
  EXPECT_GT(after, before + 0.2) << before << " -> " << after;
  EXPECT_GT(after, 0.8);
}

class AdvisorKindTest
    : public ::testing::TestWithParam<api::AdvisorKind> {};

TEST_P(AdvisorKindTest, FacadeTrainsWithEveryAdvisor) {
  api::Rafiki rafiki;
  data::SyntheticTaskOptions task;
  task.num_classes = 3;
  task.samples_per_class = 50;
  task.input_dim = 10;
  task.separation = 5.0;
  ASSERT_TRUE(
      rafiki.ImportDataset("t", data::MakeSyntheticTask(task)).ok());
  api::TrainConfig config;
  config.dataset = "t";
  config.input_shape = {10};
  config.output_shape = {3};
  config.hyper.max_trials = 4;
  config.hyper.max_epochs_per_trial = 6;
  config.num_workers = 2;
  config.advisor = GetParam();
  auto job = rafiki.Train(config);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  auto info = rafiki.WaitJob(*job);
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info->best_performance, 0.4);
  EXPECT_GE(info->trials_finished, 4);
}

INSTANTIATE_TEST_SUITE_P(AllAdvisors, AdvisorKindTest,
                         ::testing::Values(api::AdvisorKind::kRandomSearch,
                                           api::AdvisorKind::kGridSearch,
                                           api::AdvisorKind::kBayesOpt));

TEST(IntegrationTest, PsSpillToleratesStudyTraffic) {
  // Run a study against a PS backed by a cold store, spill everything,
  // then verify instant deployment still works (cold params promote back).
  storage::BlobStore cold;
  ps::ParameterServer ps(&cold);
  tuning::HyperSpace space;
  ASSERT_TRUE(space.AddRangeKnob("learning_rate", tuning::KnobDtype::kFloat,
                                 1e-3, 0.3, true)
                  .ok());
  tuning::RandomSearchAdvisor advisor(&space, 4, 17);
  data::SyntheticTaskOptions task;
  task.num_classes = 2;
  task.samples_per_class = 40;
  task.input_dim = 8;
  task.separation = 5.0;
  data::Dataset all = data::MakeSyntheticTask(task);
  Rng rng(19);
  data::DataSplits splits = data::SplitDataset(all, 0.7, 0.3, rng);
  trainer::RealTrainerFactory factory(&splits.train, &splits.validation,
                                      trainer::RealTrainerOptions{});
  cluster::MessageBus bus;
  tuning::StudyConfig config;
  config.max_trials = 4;
  config.max_epochs_per_trial = 4;
  tuning::RunStudy("spill", config, &advisor, &factory, &bus, &ps, nullptr,
                   1, 23);
  ASSERT_GT(ps.num_entries(), 0u);
  ps.SpillCold(/*min_accesses=*/1000000);  // force-spill everything
  EXPECT_EQ(ps.num_hot_entries(), 0u);
  auto ckpt = ps.GetModel("study/spill/best");
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  auto net = api::BuildMlpFromCheckpoint(*ckpt);
  ASSERT_TRUE(net.ok());
}

}  // namespace
}  // namespace rafiki
