#include "cluster/rpc_bus.h"

#include <chrono>
#include <string>
#include <thread>

#include "cluster/message_bus.h"
#include "gtest/gtest.h"

namespace rafiki::cluster {
namespace {

using namespace std::chrono_literals;

Message Msg(MessageType type, const std::string& from, int64_t id = -1) {
  Message m;
  m.type = type;
  m.from = from;
  m.trial_id = id;
  return m;
}

/// Polls until `pred` holds or ~5s pass. The TCP bus is asynchronous:
/// announces/withdraws propagate through the event loop, so route-table
/// assertions must wait instead of racing it.
template <typename Pred>
bool Eventually(Pred pred, std::chrono::milliseconds budget = 5000ms) {
  auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

TEST(RpcBusTest, LeafToHubDelivery) {
  auto hub = RpcBus::Listen({});
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  ASSERT_TRUE(hub.value()->RegisterEndpoint("master").ok());

  RpcBusOptions opts;
  opts.port = hub.value()->port();
  auto leaf = RpcBus::Connect(opts);
  ASSERT_TRUE(leaf.ok());
  ASSERT_TRUE(Eventually([&] { return leaf.value()->connected(); }));
  ASSERT_TRUE(Eventually([&] { return leaf.value()->HasEndpoint("master"); }));

  ASSERT_TRUE(leaf.value()->Send("master", Msg(MessageType::kRequest, "w0", 5))
                  .ok());
  auto got = hub.value()->ReceiveFor("master", 5000ms);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, MessageType::kRequest);
  EXPECT_EQ(got->from, "w0");
  EXPECT_EQ(got->trial_id, 5);
}

TEST(RpcBusTest, HubToLeafDelivery) {
  auto hub = RpcBus::Listen({});
  ASSERT_TRUE(hub.ok());
  RpcBusOptions opts;
  opts.port = hub.value()->port();
  auto leaf = RpcBus::Connect(opts);
  ASSERT_TRUE(leaf.ok());
  ASSERT_TRUE(leaf.value()->RegisterEndpoint("worker").ok());
  // Announce must reach the hub before a send can route.
  ASSERT_TRUE(Eventually([&] { return hub.value()->HasEndpoint("worker"); }));

  ASSERT_TRUE(
      hub.value()->Send("worker", Msg(MessageType::kTrial, "master", 1)).ok());
  auto got = leaf.value()->ReceiveFor("worker", 5000ms);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, MessageType::kTrial);
}

TEST(RpcBusTest, LeafToLeafThroughGossipedRoutes) {
  auto hub = RpcBus::Listen({});
  ASSERT_TRUE(hub.ok());
  RpcBusOptions opts;
  opts.port = hub.value()->port();
  auto a = RpcBus::Connect(opts);
  auto b = RpcBus::Connect(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b.value()->RegisterEndpoint("peer-b").ok());
  // The hub gossips b's announce to a.
  ASSERT_TRUE(Eventually([&] { return a.value()->HasEndpoint("peer-b"); }));

  ASSERT_TRUE(
      a.value()->Send("peer-b", Msg(MessageType::kReport, "peer-a", 9)).ok());
  auto got = b.value()->ReceiveFor("peer-b", 5000ms);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->from, "peer-a");
  EXPECT_EQ(got->trial_id, 9);
}

TEST(RpcBusTest, SendToUnknownEndpointFailsNotFound) {
  auto hub = RpcBus::Listen({});
  ASSERT_TRUE(hub.ok());
  EXPECT_TRUE(
      hub.value()->Send("ghost", Msg(MessageType::kRequest, "x")).IsNotFound());

  RpcBusOptions opts;
  opts.port = hub.value()->port();
  auto leaf = RpcBus::Connect(opts);
  ASSERT_TRUE(leaf.ok());
  ASSERT_TRUE(Eventually([&] { return leaf.value()->connected(); }));
  EXPECT_TRUE(
      leaf.value()->Send("ghost", Msg(MessageType::kRequest, "x")).IsNotFound());
}

TEST(RpcBusTest, DeadPeerRoutesAreWithdrawn) {
  auto hub = RpcBus::Listen({});
  ASSERT_TRUE(hub.ok());
  RpcBusOptions opts;
  opts.port = hub.value()->port();
  auto doomed = RpcBus::Connect(opts);
  auto watcher = RpcBus::Connect(opts);
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(watcher.ok());
  ASSERT_TRUE(doomed.value()->RegisterEndpoint("victim").ok());
  ASSERT_TRUE(Eventually([&] { return hub.value()->HasEndpoint("victim"); }));
  ASSERT_TRUE(
      Eventually([&] { return watcher.value()->HasEndpoint("victim"); }));

  // Kill the peer: the hub drops its routes and broadcasts the withdraw.
  doomed.value()->Shutdown();
  ASSERT_TRUE(Eventually([&] { return !hub.value()->HasEndpoint("victim"); }));
  ASSERT_TRUE(
      Eventually([&] { return !watcher.value()->HasEndpoint("victim"); }));
  EXPECT_TRUE(hub.value()
                  ->Send("victim", Msg(MessageType::kRequest, "x"))
                  .IsNotFound());
  EXPECT_TRUE(watcher.value()
                  ->Send("victim", Msg(MessageType::kRequest, "x"))
                  .IsNotFound());
}

TEST(RpcBusTest, LeafReconnectsAfterHubRestart) {
  RpcBusOptions hub_opts;
  auto hub = RpcBus::Listen(hub_opts);
  ASSERT_TRUE(hub.ok());
  uint16_t port = hub.value()->port();

  RpcBusOptions opts;
  opts.port = port;
  opts.reconnect_initial = 10ms;
  opts.reconnect_max = 50ms;
  auto leaf = RpcBus::Connect(opts);
  ASSERT_TRUE(leaf.ok());
  ASSERT_TRUE(leaf.value()->RegisterEndpoint("w").ok());
  ASSERT_TRUE(Eventually([&] { return leaf.value()->connected(); }));

  // Hub dies; the leaf notices and keeps redialing with backoff.
  hub.value()->Shutdown();
  ASSERT_TRUE(Eventually([&] { return !leaf.value()->connected(); }));

  // New hub on the same port: the leaf reconnects and re-announces, so
  // hub-side sends route again without any leaf-side intervention.
  hub_opts.port = port;
  auto hub2 = RpcBus::Listen(hub_opts);
  ASSERT_TRUE(hub2.ok()) << hub2.status().ToString();
  ASSERT_TRUE(Eventually([&] { return leaf.value()->connected(); }));
  ASSERT_TRUE(Eventually([&] { return hub2.value()->HasEndpoint("w"); }));
  ASSERT_TRUE(
      hub2.value()->Send("w", Msg(MessageType::kTrial, "master", 3)).ok());
  auto got = leaf.value()->ReceiveFor("w", 5000ms);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->trial_id, 3);
  EXPECT_GE(leaf.value()->Stats().reconnects, 1u);
}

TEST(RpcBusTest, LocalMailboxIsBounded) {
  RpcBusOptions opts;
  opts.mailbox_capacity = 2;
  auto hub = RpcBus::Listen(opts);
  ASSERT_TRUE(hub.ok());
  ASSERT_TRUE(hub.value()->RegisterEndpoint("box").ok());
  EXPECT_TRUE(hub.value()->Send("box", Msg(MessageType::kRequest, "a")).ok());
  EXPECT_TRUE(hub.value()->Send("box", Msg(MessageType::kRequest, "a")).ok());
  Status overflow = hub.value()->Send("box", Msg(MessageType::kRequest, "a"));
  EXPECT_EQ(overflow.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(hub.value()->QueueDepth("box"), 2u);
}

TEST(RpcBusTest, StatsCountFramesOnTheWire) {
  auto hub = RpcBus::Listen({});
  ASSERT_TRUE(hub.ok());
  ASSERT_TRUE(hub.value()->RegisterEndpoint("sink").ok());
  RpcBusOptions opts;
  opts.port = hub.value()->port();
  auto leaf = RpcBus::Connect(opts);
  ASSERT_TRUE(leaf.ok());
  ASSERT_TRUE(Eventually([&] { return leaf.value()->HasEndpoint("sink"); }));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        leaf.value()->Send("sink", Msg(MessageType::kReport, "w", i)).ok());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(hub.value()->ReceiveFor("sink", 5000ms).has_value());
  }
  EXPECT_GE(leaf.value()->Stats().frames_sent, 10u);
  EXPECT_GE(hub.value()->Stats().frames_received, 10u);
  EXPECT_EQ(hub.value()->Stats().messages_delivered, 10u);
}

TEST(RpcBusTest, ReceiveForTimesOutCleanly) {
  auto hub = RpcBus::Listen({});
  ASSERT_TRUE(hub.ok());
  ASSERT_TRUE(hub.value()->RegisterEndpoint("idle").ok());
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(hub.value()->ReceiveFor("idle", 30ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
}

// Regression for the bounded-mailbox satellite: the in-process loopback bus
// must reject sends into a full mailbox with ResourceExhausted, matching
// the TCP bus's backpressure semantics.
TEST(MessageBusBoundedTest, OverflowFailsResourceExhausted) {
  MessageBus bus(/*mailbox_capacity=*/3);
  ASSERT_TRUE(bus.RegisterEndpoint("q").ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(bus.Send("q", Msg(MessageType::kRequest, "p", i)).ok());
  }
  Status overflow = bus.Send("q", Msg(MessageType::kRequest, "p", 3));
  EXPECT_EQ(overflow.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(bus.Stats().send_errors, 1u);
  // Draining one slot makes room again.
  ASSERT_TRUE(bus.TryReceive("q").has_value());
  EXPECT_TRUE(bus.Send("q", Msg(MessageType::kRequest, "p", 4)).ok());
}

}  // namespace
}  // namespace rafiki::cluster
