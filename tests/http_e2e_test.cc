#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "rafiki/http_gateway.h"

namespace rafiki::api {
namespace {

/// Extracts "key=..." from a key=value&key=value body (trailing newline
/// tolerated).
std::string Field(const std::string& body, const std::string& key) {
  for (const std::string& pair : Split(body, '&')) {
    std::string p = pair;
    while (!p.empty() && (p.back() == '\n' || p.back() == '\r')) p.pop_back();
    if (StartsWith(p, key + "=")) return p.substr(key.size() + 1);
  }
  return "";
}

TEST(HttpEndToEndTest, FullLifecycleOverRealTcp) {
  // The complete Figure 18 loop over an actual socket: import -> train ->
  // poll -> deploy -> query -> metrics -> undeploy, all through HTTP.
  Rafiki rafiki;
  data::SyntheticTaskOptions task;
  task.num_classes = 3;
  task.samples_per_class = 50;
  task.input_dim = 8;
  task.separation = 5.0;
  data::Dataset dataset = data::MakeSyntheticTask(task);
  ASSERT_TRUE(rafiki.ImportDataset("t", dataset).ok());

  Gateway gateway(&rafiki);
  net::HttpServerOptions opts;
  opts.num_workers = 2;
  opts.num_handler_threads = 2;
  net::HttpServer server(MakeGatewayHttpHandler(&gateway), opts);
  ASSERT_TRUE(server.Start().ok());

  net::HttpClient client("127.0.0.1", server.port());

  // Train.
  auto train = client.Post(
      "/train?dataset=t&trials=4&epochs=6&workers=2&advisor=random");
  ASSERT_TRUE(train.ok()) << train.status().ToString();
  ASSERT_EQ(train->status, 200) << train->body;
  std::string job = Field(train->body, "job_id");
  ASSERT_FALSE(job.empty());

  // Poll until done.
  std::string done;
  for (int i = 0; i < 20000 && done != "1"; ++i) {
    auto info = client.Get("/jobs/" + job);
    ASSERT_TRUE(info.ok());
    ASSERT_EQ(info->status, 200) << info->body;
    done = Field(info->body, "done");
    if (done != "1") {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  ASSERT_EQ(done, "1");

  // Deploy.
  auto deploy = client.Post("/deploy?job=" + job);
  ASSERT_TRUE(deploy.ok());
  ASSERT_EQ(deploy->status, 200) << deploy->body;
  std::string infer = Field(deploy->body, "job_id");
  ASSERT_FALSE(infer.empty());

  // Query the first dataset row; body carries the features.
  std::vector<std::string> fields;
  for (int64_t i = 0; i < dataset.x.dim(1); ++i) {
    fields.push_back(std::to_string(dataset.x.at(i)));
  }
  auto query = client.Post("/query?job=" + infer, Join(fields, ","));
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->status, 200) << query->body;
  int label = std::stoi(Field(query->body, "label"));
  EXPECT_GE(label, 0);
  EXPECT_LT(label, 3);

  // Metrics reflect the query, including the new percentile fields.
  auto metrics = client.Get("/jobs/" + infer + "/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->status, 200) << metrics->body;
  EXPECT_EQ(Field(metrics->body, "arrived"), "1");
  EXPECT_EQ(Field(metrics->body, "processed"), "1");
  EXPECT_EQ(Field(metrics->body, "queue"), "0");
  EXPECT_FALSE(Field(metrics->body, "p99").empty());

  // Wrong method and unknown routes over the wire.
  auto wrong = client.Get("/train?dataset=t");
  ASSERT_TRUE(wrong.ok());
  EXPECT_EQ(wrong->status, 405);
  auto missing = client.Get("/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  // Percent-encoded params decode before dispatch (ghost dataset -> 404
  // proves the decoded name reached the facade).
  auto encoded = client.Post("/train?dataset=gh%6Fst");
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->status, 404) << encoded->body;

  // Undeploy; double-undeploy is 404.
  auto undeploy = client.Post("/undeploy?job=" + infer);
  ASSERT_TRUE(undeploy.ok());
  EXPECT_EQ(undeploy->status, 200);
  auto again = client.Post("/undeploy?job=" + infer);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status, 404);

  server.Stop();
  net::HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_total, stats.responses_total);
  EXPECT_EQ(stats.responses_total,
            stats.handled + stats.rejected_overload + stats.parse_errors +
                stats.rejected_draining);
}

}  // namespace
}  // namespace rafiki::api
