#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "rafiki/http_gateway.h"

namespace rafiki::api {
namespace {

/// Extracts "key=..." from a key=value&key=value body (trailing newline
/// tolerated).
std::string Field(const std::string& body, const std::string& key) {
  for (const std::string& pair : Split(body, '&')) {
    std::string p = pair;
    while (!p.empty() && (p.back() == '\n' || p.back() == '\r')) p.pop_back();
    if (StartsWith(p, key + "=")) return p.substr(key.size() + 1);
  }
  return "";
}

TEST(HttpEndToEndTest, FullLifecycleOverRealTcp) {
  // The complete Figure 18 loop over an actual socket: import -> train ->
  // poll -> deploy -> query -> metrics -> undeploy, all through HTTP.
  Rafiki rafiki;
  data::SyntheticTaskOptions task;
  task.num_classes = 3;
  task.samples_per_class = 50;
  task.input_dim = 8;
  task.separation = 5.0;
  data::Dataset dataset = data::MakeSyntheticTask(task);
  ASSERT_TRUE(rafiki.ImportDataset("t", dataset).ok());

  Gateway gateway(&rafiki);
  net::HttpServerOptions opts;
  opts.num_workers = 2;
  opts.num_handler_threads = 2;
  net::HttpServer server(MakeGatewayHttpHandler(&gateway), opts);
  ASSERT_TRUE(server.Start().ok());

  net::HttpClient client("127.0.0.1", server.port());

  // Train.
  auto train = client.Post(
      "/train?dataset=t&trials=4&epochs=6&workers=2&advisor=random");
  ASSERT_TRUE(train.ok()) << train.status().ToString();
  ASSERT_EQ(train->status, 200) << train->body;
  std::string job = Field(train->body, "job_id");
  ASSERT_FALSE(job.empty());

  // Poll until done.
  std::string done;
  for (int i = 0; i < 20000 && done != "1"; ++i) {
    auto info = client.Get("/jobs/" + job);
    ASSERT_TRUE(info.ok());
    ASSERT_EQ(info->status, 200) << info->body;
    done = Field(info->body, "done");
    if (done != "1") {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  ASSERT_EQ(done, "1");

  // Deploy.
  auto deploy = client.Post("/deploy?job=" + job);
  ASSERT_TRUE(deploy.ok());
  ASSERT_EQ(deploy->status, 200) << deploy->body;
  std::string infer = Field(deploy->body, "job_id");
  ASSERT_FALSE(infer.empty());

  // Query the first dataset row; body carries the features.
  std::vector<std::string> fields;
  for (int64_t i = 0; i < dataset.x.dim(1); ++i) {
    fields.push_back(std::to_string(dataset.x.at(i)));
  }
  auto query = client.Post("/query?job=" + infer, Join(fields, ","));
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->status, 200) << query->body;
  int label = std::stoi(Field(query->body, "label"));
  EXPECT_GE(label, 0);
  EXPECT_LT(label, 3);

  // Metrics reflect the query, including the new percentile fields.
  auto metrics = client.Get("/jobs/" + infer + "/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->status, 200) << metrics->body;
  EXPECT_EQ(Field(metrics->body, "arrived"), "1");
  EXPECT_EQ(Field(metrics->body, "processed"), "1");
  EXPECT_EQ(Field(metrics->body, "queue"), "0");
  EXPECT_FALSE(Field(metrics->body, "p99").empty());

  // Wrong method and unknown routes over the wire.
  auto wrong = client.Get("/train?dataset=t");
  ASSERT_TRUE(wrong.ok());
  EXPECT_EQ(wrong->status, 405);
  auto missing = client.Get("/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  // Percent-encoded params decode before dispatch (ghost dataset -> 404
  // proves the decoded name reached the facade).
  auto encoded = client.Post("/train?dataset=gh%6Fst");
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->status, 404) << encoded->body;

  // Undeploy; double-undeploy is 404.
  auto undeploy = client.Post("/undeploy?job=" + infer);
  ASSERT_TRUE(undeploy.ok());
  EXPECT_EQ(undeploy->status, 200);
  auto again = client.Post("/undeploy?job=" + infer);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status, 404);

  server.Stop();
  net::HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_total, stats.responses_total);
  EXPECT_EQ(stats.responses_total,
            stats.handled + stats.rejected_overload + stats.parse_errors +
                stats.rejected_draining);
}

TEST(HttpEndToEndTest, AsyncConcurrentSubmitStorm) {
  // 8 threads x 64 queries through the full continuation chain: epoll
  // server (async handler, 2 handler threads) -> gateway DispatchAsync ->
  // InferenceRuntime::SubmitAsync -> batch completion -> ResponseWriter.
  // TSan runs this; it is the data-race canary for the whole async path.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 64;

  Rafiki rafiki;
  ps::ModelCheckpoint ckpt;
  Tensor weight({4, 3});
  for (int64_t i = 0; i < 3; ++i) weight.at2(i, i) = 1.0f;
  ckpt.params.emplace_back("fc0/weight", weight);
  ckpt.params.emplace_back("fc0/bias", Tensor({1, 3}));
  ckpt.meta.accuracy = 0.9;
  ASSERT_TRUE(
      rafiki.parameter_server().PutModel("study/fake/best", ckpt).ok());
  ModelHandle handle;
  handle.scope = "study/fake/best";
  handle.model_name = "mlp";
  handle.accuracy = 0.9;
  auto deployed = rafiki.Deploy({handle});
  ASSERT_TRUE(deployed.ok());
  std::string infer = *deployed;

  Gateway gateway(&rafiki);
  net::HttpServerOptions opts;
  opts.num_workers = 2;
  opts.num_handler_threads = 2;  // far fewer than concurrent queries
  opts.max_inflight = 1024;
  // Late-bound stats cell: the handler exists before the server it gauges.
  auto server_cell = std::make_shared<net::HttpServer*>(nullptr);
  net::HttpServer server(
      MakeGatewayAsyncHttpHandler(&gateway,
                                  [server_cell] {
                                    net::HttpServer* s = *server_cell;
                                    return s ? s->stats()
                                             : net::HttpServerStats{};
                                  }),
      opts);
  *server_cell = &server;
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> ok_count{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      net::HttpClient client("127.0.0.1", server.port());
      for (int i = 0; i < kPerThread; ++i) {
        int hot = (t + i) % 3;
        std::string body = StrFormat("%d,%d,%d,0", hot == 0 ? 1 : 0,
                                     hot == 1 ? 1 : 0, hot == 2 ? 1 : 0);
        auto resp = client.Post("/jobs/" + infer + "/query", body);
        if (!resp.ok() || resp->status != 200 ||
            Field(resp->body, "label") != std::to_string(hot)) {
          ++wrong;
          continue;
        }
        ++ok_count;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);

  auto metrics = rafiki.InferenceMetrics(infer);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->arrived, kThreads * kPerThread);
  EXPECT_EQ(metrics->processed, kThreads * kPerThread);
  EXPECT_EQ(metrics->dropped, 0);
  EXPECT_EQ(metrics->expired, 0);

  // The metrics route reports the front door's own gauges. The metrics
  // request itself is the only in-flight work: its handler is running
  // (pool occupancy 1) and nothing is parked async.
  net::HttpClient probe("127.0.0.1", server.port());
  auto gauges = probe.Get("/jobs/" + infer + "/metrics");
  ASSERT_TRUE(gauges.ok());
  ASSERT_EQ(gauges->status, 200) << gauges->body;
  EXPECT_EQ(Field(gauges->body, "expired"), "0");
  EXPECT_EQ(Field(gauges->body, "inflight"), "1");
  EXPECT_EQ(Field(gauges->body, "handler_busy"), "1");
  EXPECT_EQ(Field(gauges->body, "async_pending"), "0");
  EXPECT_FALSE(Field(gauges->body, "inflight_peak").empty());

  server.Stop();
  net::HttpServerStats stats = server.stats();
  // + 1: the gauge probe above.
  EXPECT_EQ(stats.requests_total,
            static_cast<uint64_t>(kThreads * kPerThread + 1));
  EXPECT_EQ(stats.requests_total, stats.responses_total);
  EXPECT_EQ(stats.handled, stats.responses_total);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.async_pending, 0u);
}

}  // namespace
}  // namespace rafiki::api
