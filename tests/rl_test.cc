#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "rl/actor_critic.h"

namespace rafiki::rl {
namespace {

ActorCriticOptions SmallAgent(int state_dim, int actions) {
  ActorCriticOptions options;
  options.state_dim = state_dim;
  options.num_actions = actions;
  options.hidden = 32;
  options.policy_lr = 5e-3;
  options.value_lr = 5e-3;
  options.update_every = 32;
  options.seed = 21;
  return options;
}

TEST(ActorCriticTest, ProbabilitiesFormDistribution) {
  ActorCritic agent(SmallAgent(4, 5));
  std::vector<double> probs = agent.Probabilities({0.1, 0.2, 0.3, 0.4});
  ASSERT_EQ(probs.size(), 5u);
  double sum = 0.0;
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(ActorCriticTest, ActReturnsValidActions) {
  ActorCritic agent(SmallAgent(3, 4));
  for (int i = 0; i < 100; ++i) {
    int a = agent.Act({0.0, 0.5, 1.0});
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
  // Greedy action is deterministic.
  int g1 = agent.Act({0.0, 0.5, 1.0}, /*explore=*/false);
  int g2 = agent.Act({0.0, 0.5, 1.0}, /*explore=*/false);
  EXPECT_EQ(g1, g2);
}

TEST(ActorCriticTest, LearnsStatelessBandit) {
  // Two actions, action 1 always pays more: the policy should concentrate
  // on it.
  ActorCritic agent(SmallAgent(2, 2));
  std::vector<double> state{1.0, 0.0};
  for (int step = 0; step < 3000; ++step) {
    int a = agent.Act(state);
    double reward = a == 1 ? 1.0 : 0.0;
    agent.Record(state, a, reward);
  }
  std::vector<double> probs = agent.Probabilities(state);
  EXPECT_GT(probs[1], 0.8) << "agent failed to prefer the rewarding arm";
}

TEST(ActorCriticTest, LearnsContextualBandit) {
  // Reward depends on the state: best action flips with the first feature.
  ActorCritic agent(SmallAgent(2, 2));
  Rng rng(3);
  for (int step = 0; step < 6000; ++step) {
    bool ctx = rng.Bernoulli(0.5);
    std::vector<double> state{ctx ? 1.0 : 0.0, ctx ? 0.0 : 1.0};
    int a = agent.Act(state);
    double reward = (a == (ctx ? 1 : 0)) ? 1.0 : -0.2;
    agent.Record(state, a, reward);
  }
  EXPECT_GT(agent.Probabilities({1.0, 0.0})[1], 0.7);
  EXPECT_GT(agent.Probabilities({0.0, 1.0})[0], 0.7);
}

TEST(ActorCriticTest, ValueTracksExpectedReturn) {
  ActorCritic agent(SmallAgent(2, 2));
  std::vector<double> state{0.5, 0.5};
  for (int step = 0; step < 2000; ++step) {
    int a = agent.Act(state);
    agent.Record(state, a, 1.0);  // constant reward
  }
  // With gamma = 0.9 the discounted return of a constant 1.0 reward
  // approaches 1 / (1 - 0.9) = 10.
  EXPECT_NEAR(agent.Value(state), 10.0, 3.0);
}

TEST(ActorCriticTest, FlushUpdatesPartialBuffer) {
  ActorCritic agent(SmallAgent(2, 2));
  EXPECT_EQ(agent.updates(), 0);
  agent.Record({0.0, 1.0}, 0, 0.5);
  agent.Record({1.0, 0.0}, 1, 0.5);
  agent.Flush();
  EXPECT_EQ(agent.updates(), 1);
  agent.Flush();  // empty buffer: no-op
  EXPECT_EQ(agent.updates(), 1);
}

TEST(ActorCriticTest, UpdateEveryTriggersAutomatically) {
  ActorCriticOptions options = SmallAgent(2, 2);
  options.update_every = 8;
  ActorCritic agent(options);
  for (int i = 0; i < 16; ++i) {
    agent.Record({0.1, 0.2}, 0, 0.0);
  }
  EXPECT_EQ(agent.updates(), 2);
}

}  // namespace
}  // namespace rafiki::rl
