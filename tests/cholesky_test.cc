// Blocked-vs-naive Cholesky parity on random SPD matrices, plus the solve
// helper and the non-positive-definite failure path.

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "tuning/cholesky.h"

namespace rafiki::tuning {
namespace {

// SPD by construction: A = B*B^T + n*I with random B.
std::vector<double> RandomSpd(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> b(n * n);
  for (double& v : b) v = rng.Uniform(-1.0, 1.0);
  std::vector<double> a(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < n; ++k) acc += b[i * n + k] * b[j * n + k];
      if (i == j) acc += static_cast<double>(n);
      a[i * n + j] = acc;
      a[j * n + i] = acc;
    }
  }
  return a;
}

TEST(CholeskyTest, BlockedMatchesNaive) {
  // Sizes straddle the default panel width and include non-multiples of
  // both the panel and the trailing-update tile.
  for (size_t n : {1u, 7u, 48u, 61u, 130u, 200u}) {
    std::vector<double> a = RandomSpd(n, 1000 + n);
    std::vector<double> naive = a;
    std::vector<double> blocked = a;
    ASSERT_TRUE(CholeskyNaive(naive.data(), n)) << "n=" << n;
    ASSERT_TRUE(CholeskyBlocked(blocked.data(), n)) << "n=" << n;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j <= i; ++j) {
        double ref = naive[i * n + j];
        ASSERT_NEAR(blocked[i * n + j], ref,
                    1e-9 * (1.0 + std::fabs(ref)))
            << "n=" << n << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(CholeskyTest, SmallBlockSizesAgree) {
  size_t n = 73;
  std::vector<double> a = RandomSpd(n, 42);
  std::vector<double> ref = a;
  ASSERT_TRUE(CholeskyNaive(ref.data(), n));
  for (size_t block : {1u, 2u, 16u, 73u, 100u}) {
    std::vector<double> l = a;
    ASSERT_TRUE(CholeskyBlocked(l.data(), n, block)) << "block=" << block;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j <= i; ++j) {
        ASSERT_NEAR(l[i * n + j], ref[i * n + j],
                    1e-9 * (1.0 + std::fabs(ref[i * n + j])))
            << "block=" << block;
      }
    }
  }
}

TEST(CholeskyTest, FactorizationReconstructsMatrix) {
  size_t n = 96;
  std::vector<double> a = RandomSpd(n, 7);
  std::vector<double> l = a;
  ASSERT_TRUE(CholeskyBlocked(l.data(), n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k <= j; ++k) acc += l[i * n + k] * l[j * n + k];
      ASSERT_NEAR(acc, a[i * n + j], 1e-8 * (1.0 + std::fabs(a[i * n + j])));
    }
  }
}

TEST(CholeskyTest, SolveInvertsSystem) {
  size_t n = 50;
  std::vector<double> a = RandomSpd(n, 9);
  std::vector<double> l = a;
  ASSERT_TRUE(CholeskyBlocked(l.data(), n));
  Rng rng(13);
  std::vector<double> x_true(n);
  for (double& v : x_true) v = rng.Uniform(-2.0, 2.0);
  // b = A * x_true, then solve back.
  std::vector<double> x(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < n; ++j) acc += a[i * n + j] * x_true[j];
    x[i] = acc;
  }
  CholeskySolve(l.data(), n, x.data());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(x[i], x_true[i], 1e-7 * (1.0 + std::fabs(x_true[i])));
  }
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  // Symmetric but indefinite (negative eigenvalue).
  std::vector<double> a = {1.0, 2.0, 2.0, 1.0};
  std::vector<double> b = a;
  EXPECT_FALSE(CholeskyNaive(a.data(), 2));
  EXPECT_FALSE(CholeskyBlocked(b.data(), 2));
}

}  // namespace
}  // namespace rafiki::tuning
