// Property tests on the correlated-error prediction simulator behind
// Figure 6 (see model_test.cc for the calibration checks).

#include <cmath>

#include "gtest/gtest.h"
#include "model/prediction_sim.h"
#include "model/profile.h"

namespace rafiki::model {
namespace {

std::vector<ModelProfile> TwoModels(double acc_a, double acc_b) {
  ModelProfile a;
  a.name = "a";
  a.top1_accuracy = acc_a;
  ModelProfile b;
  b.name = "b";
  b.top1_accuracy = acc_b;
  return {a, b};
}

TEST(PredictionSimPropertyTest, DeterministicPerSeed) {
  PredictionSimOptions options;
  PredictionSimulator s1(TwoModels(0.7, 0.8), options);
  PredictionSimulator s2(TwoModels(0.7, 0.8), options);
  for (int i = 0; i < 200; ++i) {
    auto a = s1.Draw();
    auto b = s2.Draw();
    EXPECT_EQ(a.truth, b.truth);
    EXPECT_EQ(a.predictions, b.predictions);
  }
}

TEST(PredictionSimPropertyTest, SingleAccuracyTracksCalibration) {
  for (double target : {0.55, 0.7, 0.85, 0.95}) {
    PredictionSimulator sim(TwoModels(target, 0.9), PredictionSimOptions{});
    EXPECT_NEAR(sim.EnsembleAccuracy(0b01, 40000), target, 0.01)
        << "target " << target;
  }
}

TEST(PredictionSimPropertyTest, LowerCorrelationMeansBiggerEnsembleGain) {
  // Independent errors give the classic Condorcet boost; near-perfect
  // correlation gives almost none. This is the dial that calibrates the
  // Figure 6 shape.
  auto gain = [](double rho) {
    PredictionSimOptions options;
    options.correlation = rho;
    std::vector<ModelProfile> models{
        FindProfile("inception_v3").value(),
        FindProfile("inception_v4").value(),
        FindProfile("inception_resnet_v2").value()};
    EnsembleAccuracyTable table(models, options, 30000);
    return table.Accuracy(0b111) - table.Accuracy(0b100);
  };
  double low_rho_gain = gain(0.2);
  double high_rho_gain = gain(0.97);
  EXPECT_GT(low_rho_gain, high_rho_gain + 0.02);
  EXPECT_GT(low_rho_gain, 0.05);
  EXPECT_LT(high_rho_gain, 0.03);
}

TEST(PredictionSimPropertyTest, PredictionsAreValidLabels) {
  PredictionSimOptions options;
  options.num_classes = 10;
  PredictionSimulator sim(TwoModels(0.5, 0.6), options);
  for (int i = 0; i < 500; ++i) {
    auto s = sim.Draw();
    EXPECT_GE(s.truth, 0);
    EXPECT_LT(s.truth, 10);
    for (int64_t p : s.predictions) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, 10);
    }
  }
}

TEST(PredictionSimPropertyTest, WrongPredictionsNeverEqualTruthByAccident) {
  // When the model is wrong the simulator must emit a label != truth;
  // verify via per-model accuracy == empirical fraction of truth matches.
  PredictionSimOptions options;
  options.num_classes = 100;
  PredictionSimulator sim(TwoModels(0.75, 0.75), options);
  int match = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    auto s = sim.Draw();
    if (s.predictions[0] == s.truth) ++match;
  }
  EXPECT_NEAR(static_cast<double>(match) / n, 0.75, 0.01);
}

class TieBreakSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TieBreakSweepTest, PaperRuleNeverWorseThanWorstMember) {
  // For every subset, the ensemble with best-accuracy tie-break must be at
  // least as accurate as its worst member (it can only deviate from a
  // member's answer when outvoted or tied toward a better member).
  uint32_t mask = GetParam();
  std::vector<ModelProfile> models{
      FindProfile("resnet_v2_101").value(),
      FindProfile("inception_v3").value(),
      FindProfile("inception_v4").value(),
      FindProfile("inception_resnet_v2").value()};
  EnsembleAccuracyTable table(models, PredictionSimOptions{}, 20000);
  double worst = 1.0;
  for (size_t m = 0; m < models.size(); ++m) {
    if (mask & (1u << m)) {
      worst = std::min(worst, table.Accuracy(1u << m));
    }
  }
  EXPECT_GE(table.Accuracy(mask), worst - 0.005) << "mask " << mask;
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, TieBreakSweepTest,
                         ::testing::Range(1u, 16u));

}  // namespace
}  // namespace rafiki::model
