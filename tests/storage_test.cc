#include <thread>

#include "data/dataset.h"
#include "gtest/gtest.h"
#include "storage/blob_store.h"
#include "storage/serialize.h"

namespace rafiki::storage {
namespace {

TEST(BlobStoreTest, PutGetRoundTrip) {
  BlobStore store;
  ASSERT_TRUE(store.Put("a/b", {1, 2, 3}).ok());
  auto got = store.Get("a/b");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), (std::vector<uint8_t>{1, 2, 3}));
}

TEST(BlobStoreTest, GetMissingIsNotFound) {
  BlobStore store;
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
}

TEST(BlobStoreTest, OverwriteReplacesAndAccountsBytes) {
  BlobStore store;
  ASSERT_TRUE(store.Put("k", {1, 2, 3, 4}).ok());
  EXPECT_EQ(store.size_bytes(), 4u);
  ASSERT_TRUE(store.Put("k", {9}).ok());
  EXPECT_EQ(store.size_bytes(), 1u);
  EXPECT_EQ(store.num_blobs(), 1u);
}

TEST(BlobStoreTest, CapacityEnforced) {
  BlobStore store(8);
  ASSERT_TRUE(store.Put("a", {1, 2, 3, 4, 5}).ok());
  Status s = store.Put("b", {1, 2, 3, 4, 5});
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  // Replacing the existing blob within capacity is fine.
  EXPECT_TRUE(store.Put("a", {1, 2, 3, 4, 5, 6, 7, 8}).ok());
}

TEST(BlobStoreTest, DeleteFreesSpace) {
  BlobStore store(4);
  ASSERT_TRUE(store.Put("a", {1, 2, 3, 4}).ok());
  ASSERT_TRUE(store.Delete("a").ok());
  EXPECT_EQ(store.size_bytes(), 0u);
  EXPECT_TRUE(store.Delete("a").IsNotFound());
  EXPECT_TRUE(store.Put("b", {1, 2, 3, 4}).ok());
}

TEST(BlobStoreTest, ListByPrefixSorted) {
  BlobStore store;
  ASSERT_TRUE(store.Put("datasets/b", {1}).ok());
  ASSERT_TRUE(store.Put("datasets/a", {1}).ok());
  ASSERT_TRUE(store.Put("params/x", {1}).ok());
  EXPECT_EQ(store.List("datasets/"),
            (std::vector<std::string>{"datasets/a", "datasets/b"}));
  EXPECT_EQ(store.List("nope/").size(), 0u);
}

TEST(BlobStoreTest, ConcurrentPutsAllLand) {
  BlobStore store;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 50; ++i) {
        std::string key = "t" + std::to_string(t) + "/" + std::to_string(i);
        ASSERT_TRUE(store.Put(key, {static_cast<uint8_t>(i)}).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.num_blobs(), 200u);
}

TEST(SerializeTest, TensorRoundTrip) {
  Rng rng(1);
  Tensor t = Tensor::Randn({3, 4, 5}, rng);
  auto bytes = SerializeTensor(t);
  auto back = DeserializeTensor(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->shape(), t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(back->at(i), t.at(i));
  }
}

TEST(SerializeTest, TensorRejectsGarbage) {
  EXPECT_FALSE(DeserializeTensor({1, 2, 3}).ok());
  // Corrupt a valid payload's magic.
  Rng rng(2);
  auto bytes = SerializeTensor(Tensor::Randn({2}, rng));
  bytes[0] ^= 0xff;
  EXPECT_FALSE(DeserializeTensor(bytes).ok());
  // Truncated payload.
  auto bytes2 = SerializeTensor(Tensor::Randn({4}, rng));
  bytes2.pop_back();
  EXPECT_FALSE(DeserializeTensor(bytes2).ok());
}

TEST(SerializeTest, DatasetRoundTrip) {
  data::SyntheticTaskOptions options;
  options.num_classes = 3;
  options.samples_per_class = 7;
  options.input_dim = 5;
  data::Dataset d = data::MakeSyntheticTask(options);
  auto bytes = SerializeDataset(d);
  auto back = DeserializeDataset(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_classes, 3);
  EXPECT_EQ(back->labels, d.labels);
  EXPECT_EQ(back->x.shape(), d.x.shape());
  for (int64_t i = 0; i < d.x.numel(); ++i) {
    EXPECT_EQ(back->x.at(i), d.x.at(i));
  }
}

TEST(SerializeTest, DatasetRejectsRowMismatch) {
  data::SyntheticTaskOptions options;
  options.num_classes = 2;
  options.samples_per_class = 3;
  data::Dataset d = data::MakeSyntheticTask(options);
  auto bytes = SerializeDataset(d);
  // Flip the row count in the header (offset 4: magic(4) then classes(8)).
  bytes[4 + 8] ^= 0x01;
  EXPECT_FALSE(DeserializeDataset(bytes).ok());
}

}  // namespace
}  // namespace rafiki::storage
