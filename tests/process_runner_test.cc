#include "cluster/process_runner.h"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "gtest/gtest.h"

namespace rafiki::cluster {
namespace {

ProcessSpec ShellSpec(const std::string& script) {
  ProcessSpec spec;
  spec.binary = "/bin/sh";
  spec.args = {"-c", script};
  return spec;
}

// A long-lived process spawned WITHOUT a shell wrapper: this /bin/sh forks
// (not execs) for -c, so SIGKILLing the shell would orphan the sleep and
// leak a child that outlives the test.
ProcessSpec SleepSpec() {
  ProcessSpec spec;
  spec.binary = "/bin/sleep";
  spec.args = {"30"};
  return spec;
}

TEST(ProcessRunnerTest, SpawnAndWaitCleanExit) {
  ProcessRunner runner;
  ASSERT_TRUE(runner.Spawn("ok", ShellSpec("exit 0")).ok());
  auto exit = runner.Wait("ok");
  ASSERT_TRUE(exit.ok()) << exit.status().ToString();
  EXPECT_EQ(exit.value().name, "ok");
  EXPECT_FALSE(exit.value().signaled);
  EXPECT_EQ(exit.value().exit_code, 0);
  EXPECT_FALSE(runner.IsRunning("ok"));
}

TEST(ProcessRunnerTest, NonZeroExitCodeIsReported) {
  ProcessRunner runner;
  ASSERT_TRUE(runner.Spawn("fail", ShellSpec("exit 7")).ok());
  auto exit = runner.Wait("fail");
  ASSERT_TRUE(exit.ok());
  EXPECT_FALSE(exit.value().signaled);
  EXPECT_EQ(exit.value().exit_code, 7);
}

TEST(ProcessRunnerTest, MissingBinaryExitsWith127) {
  ProcessRunner runner;
  ProcessSpec spec;
  spec.binary = "/definitely/not/a/real/binary";
  ASSERT_TRUE(runner.Spawn("missing", spec).ok());
  auto exit = runner.Wait("missing");
  ASSERT_TRUE(exit.ok());
  EXPECT_EQ(exit.value().exit_code, 127);
}

TEST(ProcessRunnerTest, KillReportsSignaledExit) {
  ProcessRunner runner;
  ASSERT_TRUE(runner.Spawn("victim", SleepSpec()).ok());
  ASSERT_TRUE(runner.IsRunning("victim"));
  ASSERT_TRUE(runner.Kill("victim").ok());
  EXPECT_FALSE(runner.IsRunning("victim"));
  auto exit = runner.Wait("victim");
  ASSERT_TRUE(exit.ok());
  EXPECT_TRUE(exit.value().signaled);
  EXPECT_EQ(exit.value().signal, SIGKILL);
}

TEST(ProcessRunnerTest, RestartCountsSurviveRespawns) {
  ProcessRunner runner;
  ASSERT_TRUE(runner.Spawn("w", SleepSpec()).ok());
  EXPECT_EQ(runner.RestartCount("w"), 0);
  ASSERT_TRUE(runner.Restart("w").ok());
  EXPECT_EQ(runner.RestartCount("w"), 1);
  ASSERT_TRUE(runner.Restart("w").ok());
  EXPECT_EQ(runner.RestartCount("w"), 2);
  EXPECT_TRUE(runner.IsRunning("w"));
  auto pid = runner.Pid("w");
  ASSERT_TRUE(pid.ok());
  EXPECT_GT(pid.value(), 0);
  ASSERT_TRUE(runner.Kill("w").ok());
}

TEST(ProcessRunnerTest, PollReapsExitsWithoutBlocking) {
  ProcessRunner runner;
  ASSERT_TRUE(runner.Spawn("a", ShellSpec("exit 3")).ok());
  ASSERT_TRUE(runner.Spawn("b", SleepSpec()).ok());
  // Poll until "a" is reaped; "b" keeps running and must not block Poll.
  std::vector<ProcessExit> exits;
  for (int i = 0; i < 2500 && exits.empty(); ++i) {
    exits = runner.Poll();
    if (exits.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_EQ(exits[0].name, "a");
  EXPECT_EQ(exits[0].exit_code, 3);
  EXPECT_TRUE(runner.IsRunning("b"));
  ASSERT_TRUE(runner.Kill("b").ok());
}

TEST(ProcessRunnerTest, KillAlreadyExitedFailsPrecondition) {
  ProcessRunner runner;
  ASSERT_TRUE(runner.Spawn("gone", ShellSpec("exit 0")).ok());
  ASSERT_TRUE(runner.Wait("gone").ok());
  Status again = runner.Kill("gone");
  EXPECT_FALSE(again.ok());
}

TEST(ProcessRunnerTest, UnknownNameIsNotFound) {
  ProcessRunner runner;
  EXPECT_TRUE(runner.Kill("nobody").IsNotFound());
  EXPECT_FALSE(runner.Wait("nobody").ok());
  EXPECT_FALSE(runner.Pid("nobody").ok());
  EXPECT_EQ(runner.RestartCount("nobody"), 0);
}

TEST(ProcessRunnerTest, ShutdownKillsEverything) {
  ProcessRunner runner;
  ASSERT_TRUE(runner.Spawn("s1", SleepSpec()).ok());
  ASSERT_TRUE(runner.Spawn("s2", SleepSpec()).ok());
  runner.Shutdown();
  EXPECT_FALSE(runner.IsRunning("s1"));
  EXPECT_FALSE(runner.IsRunning("s2"));
}

}  // namespace
}  // namespace rafiki::cluster
