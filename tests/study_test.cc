#include <memory>

#include "cluster/message_bus.h"
#include "gtest/gtest.h"
#include "ps/parameter_server.h"
#include "storage/blob_store.h"
#include "trainer/surrogate.h"
#include "tuning/bayes_opt.h"
#include "tuning/study.h"
#include "tuning/trial_advisor.h"

namespace rafiki::tuning {
namespace {

/// The CIFAR-10 group-3 space of §7.1.1 (optimization hyper-parameters).
HyperSpace MakeOptimizerSpace() {
  HyperSpace space;
  EXPECT_TRUE(space.AddRangeKnob("learning_rate", KnobDtype::kFloat, 1e-4,
                                 1.0, /*log_scale=*/true)
                  .ok());
  EXPECT_TRUE(
      space.AddRangeKnob("momentum", KnobDtype::kFloat, 0.0, 0.999).ok());
  EXPECT_TRUE(space.AddRangeKnob("weight_decay", KnobDtype::kFloat, 1e-6,
                                 1e-1, /*log_scale=*/true)
                  .ok());
  EXPECT_TRUE(space.AddRangeKnob("dropout", KnobDtype::kFloat, 0.0, 0.7).ok());
  EXPECT_TRUE(space.AddRangeKnob("init_std", KnobDtype::kFloat, 1e-3, 1.0,
                                 /*log_scale=*/true)
                  .ok());
  return space;
}

StudyConfig FastConfig(bool collaborative) {
  StudyConfig config;
  config.max_trials = 12;
  config.max_epochs_per_trial = 12;
  config.collaborative = collaborative;
  config.delta = 0.005;
  config.alpha_init = 0.7;
  config.alpha_decay = 0.85;
  config.early_stop_patience = 3;
  return config;
}

TEST(StudyTest, PlainStudyFinishesAllTrials) {
  HyperSpace space = MakeOptimizerSpace();
  RandomSearchAdvisor advisor(&space, 12, /*seed=*/1);
  trainer::SurrogateFactory factory(trainer::SurrogateOptions{});
  cluster::MessageBus bus;
  ps::ParameterServer ps;
  StudyStats stats = RunStudy("plain", FastConfig(false), &advisor, &factory,
                              &bus, &ps, nullptr, /*num_workers=*/2,
                              /*seed=*/7);
  EXPECT_EQ(stats.trials.size(), 12u);
  EXPECT_GT(stats.best_performance, 0.2);
  EXPECT_GT(stats.total_epochs, 0);
  // Plain study never warm-starts.
  for (const TrialRecord& t : stats.trials) {
    EXPECT_FALSE(t.warm_started);
  }
}

TEST(StudyTest, PlainStudyPublishesBestModelToPs) {
  HyperSpace space = MakeOptimizerSpace();
  RandomSearchAdvisor advisor(&space, 8, /*seed=*/2);
  trainer::SurrogateFactory factory(trainer::SurrogateOptions{});
  cluster::MessageBus bus;
  ps::ParameterServer ps;
  StudyStats stats = RunStudy("pub", FastConfig(false), &advisor, &factory,
                              &bus, &ps, nullptr, 1, 7);
  // The best finished trial's parameters must be in the PS for instant
  // deployment (Algorithm 1 line 15-17).
  auto best = ps.GetModel("study/pub/best");
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_GT(best->meta.accuracy, 0.0);
  EXPECT_FALSE(best->params.empty());
}

TEST(StudyTest, CoStudyWarmStartsSomeTrials) {
  HyperSpace space = MakeOptimizerSpace();
  RandomSearchAdvisor advisor(&space, 16, /*seed=*/3);
  trainer::SurrogateFactory factory(trainer::SurrogateOptions{});
  cluster::MessageBus bus;
  ps::ParameterServer ps;
  StudyConfig config = FastConfig(true);
  config.max_trials = 16;
  StudyStats stats = RunStudy("co", config, &advisor, &factory, &bus, &ps,
                              nullptr, 2, 7);
  EXPECT_EQ(stats.trials.size(), 16u);
  int warm = 0;
  for (const TrialRecord& t : stats.trials) warm += t.warm_started ? 1 : 0;
  EXPECT_GT(warm, 0) << "alpha-greedy should warm start some trials";
}

TEST(StudyTest, TargetPerformanceStopsEarly) {
  HyperSpace space = MakeOptimizerSpace();
  RandomSearchAdvisor advisor(&space, 1000, /*seed=*/4);
  trainer::SurrogateFactory factory(trainer::SurrogateOptions{});
  cluster::MessageBus bus;
  ps::ParameterServer ps;
  StudyConfig config = FastConfig(false);
  config.max_trials = 1000;
  config.target_performance = 0.3;  // trivially reachable
  StudyStats stats = RunStudy("tgt", config, &advisor, &factory, &bus, &ps,
                              nullptr, 2, 7);
  EXPECT_LT(static_cast<int64_t>(stats.trials.size()), 1000);
  EXPECT_GE(stats.best_performance, 0.3);
}

TEST(StudyTest, EarlyStoppingLimitsEpochs) {
  HyperSpace space = MakeOptimizerSpace();
  RandomSearchAdvisor advisor(&space, 6, /*seed=*/5);
  trainer::SurrogateFactory factory(trainer::SurrogateOptions{});
  cluster::MessageBus bus;
  ps::ParameterServer ps;
  StudyConfig config = FastConfig(false);
  config.max_trials = 6;
  config.max_epochs_per_trial = 200;
  config.early_stop_patience = 3;
  StudyStats stats = RunStudy("es", config, &advisor, &factory, &bus, &ps,
                              nullptr, 1, 7);
  ASSERT_EQ(stats.trials.size(), 6u);
  // The surrogate plateaus; early stopping must cut well below 200 epochs.
  for (const TrialRecord& t : stats.trials) {
    EXPECT_LT(t.epochs, 120) << "trial " << t.trial_id;
  }
}

TEST(StudyTest, MasterCheckpointRoundTrips) {
  HyperSpace space = MakeOptimizerSpace();
  RandomSearchAdvisor advisor(&space, 5, /*seed=*/6);
  trainer::SurrogateFactory factory(trainer::SurrogateOptions{});
  cluster::MessageBus bus;
  ps::ParameterServer ps;
  storage::BlobStore store;
  StudyConfig config = FastConfig(false);
  config.max_trials = 5;
  config.checkpoint_every_events = 1;
  StudyStats stats = RunStudy("ckpt", config, &advisor, &factory, &bus, &ps,
                              &store, 1, 7);
  ASSERT_TRUE(store.Exists("study/ckpt/master_ckpt"));

  // A recovered master restores the best performance seen so far (§6.3).
  RandomSearchAdvisor advisor2(&space, 5, 6);
  StudyMaster recovered("ckpt", config, &advisor2, &bus, &store);
  ASSERT_TRUE(recovered.RestoreFromCheckpoint().ok());
  EXPECT_DOUBLE_EQ(recovered.stats().best_performance,
                   stats.best_performance);
}

TEST(StudyTest, CoStudyBeatsStudyOnSurrogate) {
  // The headline Figure 8 effect, in miniature: at an equal trial budget,
  // collaborative tuning reaches at least the plain study's accuracy
  // (warm starts push past the early-stopping plateau).
  HyperSpace space = MakeOptimizerSpace();
  trainer::SurrogateFactory factory1(trainer::SurrogateOptions{});
  trainer::SurrogateFactory factory2(trainer::SurrogateOptions{});
  cluster::MessageBus bus;

  StudyConfig config = FastConfig(false);
  config.max_trials = 24;
  config.early_stop_patience = 4;
  // One worker per study keeps the trial -> worker assignment (and thus
  // the warm-start sequence) deterministic; with two racing workers the
  // comparison depends on thread scheduling and flakes under suite load.
  RandomSearchAdvisor a1(&space, 24, /*seed=*/11);
  ps::ParameterServer ps1;
  StudyStats plain = RunStudy("cmp_plain", config, &a1, &factory1, &bus,
                              &ps1, nullptr, 1, 7);

  config.collaborative = true;
  RandomSearchAdvisor a2(&space, 24, /*seed=*/11);
  ps::ParameterServer ps2;
  StudyStats costudy = RunStudy("cmp_co", config, &a2, &factory2, &bus, &ps2,
                                nullptr, 1, 7);

  EXPECT_GE(costudy.best_performance + 0.02, plain.best_performance);
}

TEST(StudyTest, BayesOptAdvisorDrivesStudy) {
  HyperSpace space = MakeOptimizerSpace();
  BayesOptOptions options;
  options.max_trials = 10;
  options.num_init_random = 4;
  options.candidates_per_step = 64;
  BayesOptAdvisor advisor(&space, options);
  trainer::SurrogateFactory factory(trainer::SurrogateOptions{});
  cluster::MessageBus bus;
  ps::ParameterServer ps;
  StudyConfig config = FastConfig(false);
  config.max_trials = 10;
  StudyStats stats = RunStudy("bo", config, &advisor, &factory, &bus, &ps,
                              nullptr, 2, 7);
  EXPECT_EQ(stats.trials.size(), 10u);
  EXPECT_GT(stats.best_performance, 0.2);
}

}  // namespace
}  // namespace rafiki::tuning
