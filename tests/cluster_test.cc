#include <atomic>
#include <chrono>
#include <thread>

#include "cluster/message_bus.h"
#include "cluster/node_manager.h"
#include "gtest/gtest.h"

namespace rafiki::cluster {
namespace {

TEST(MessageTest, DebugStringIncludesType) {
  Message m;
  m.type = MessageType::kReport;
  m.from = "w0";
  m.trial_id = 3;
  m.performance = 0.5;
  EXPECT_NE(m.DebugString().find("kReport"), std::string::npos);
  EXPECT_STREQ(MessageTypeToString(MessageType::kPut), "kPut");
}

TEST(MessageBusTest, SendReceive) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("a").ok());
  Message m;
  m.type = MessageType::kRequest;
  m.from = "b";
  ASSERT_TRUE(bus.Send("a", m).ok());
  auto got = bus.Receive("a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, MessageType::kRequest);
  EXPECT_EQ(got->from, "b");
}

TEST(MessageBusTest, SendToMissingEndpointFails) {
  MessageBus bus;
  Message m;
  EXPECT_TRUE(bus.Send("ghost", m).IsNotFound());
}

TEST(MessageBusTest, DuplicateRegistrationFails) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("a").ok());
  EXPECT_EQ(bus.RegisterEndpoint("a").code(), StatusCode::kAlreadyExists);
}

TEST(MessageBusTest, RemoveEndpointWakesReceiver) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("a").ok());
  std::atomic<bool> woke{false};
  std::thread receiver([&] {
    auto got = bus.Receive("a");
    EXPECT_FALSE(got.has_value());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(bus.RemoveEndpoint("a").ok());
  receiver.join();
  EXPECT_TRUE(woke);
}

TEST(MessageBusTest, TryReceiveNonBlocking) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("a").ok());
  EXPECT_FALSE(bus.TryReceive("a").has_value());
  Message m;
  ASSERT_TRUE(bus.Send("a", m).ok());
  EXPECT_TRUE(bus.TryReceive("a").has_value());
}

TEST(MessageBusTest, QueueDepthTracksBacklog) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("a").ok());
  Message m;
  bus.Send("a", m);
  bus.Send("a", m);
  EXPECT_EQ(bus.QueueDepth("a"), 2u);
  bus.TryReceive("a");
  EXPECT_EQ(bus.QueueDepth("a"), 1u);
}

TEST(MessageBusTest, FieldsSurviveTransport) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("a").ok());
  Message m;
  m.type = MessageType::kReport;
  m.performance = 0.875;
  m.num_fields["epoch"] = 7;
  m.str_fields["trial"] = "1|lr:f:0.5";
  ASSERT_TRUE(bus.Send("a", std::move(m)).ok());
  auto got = bus.Receive("a");
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->performance, 0.875);
  EXPECT_DOUBLE_EQ(got->num_fields.at("epoch"), 7);
  EXPECT_EQ(got->str_fields.at("trial"), "1|lr:f:0.5");
}

TEST(NodeManagerTest, ContainerRunsToCompletion) {
  NodeManager manager;
  std::atomic<int> counter{0};
  ASSERT_TRUE(manager
                  .StartContainer("job",
                                  [&](CancelToken& token) { counter = 42; })
                  .ok());
  ASSERT_TRUE(manager.WaitContainer("job").ok());
  EXPECT_EQ(counter, 42);
  EXPECT_FALSE(manager.IsRunning("job"));
}

TEST(NodeManagerTest, DuplicateNameRejected) {
  NodeManager manager;
  ASSERT_TRUE(
      manager.StartContainer("x", [](CancelToken&) {}).ok());
  EXPECT_EQ(manager.StartContainer("x", [](CancelToken&) {}).code(),
            StatusCode::kAlreadyExists);
}

TEST(NodeManagerTest, KillCancelsLongRunningBody) {
  NodeManager manager;
  std::atomic<bool> saw_cancel{false};
  ASSERT_TRUE(manager
                  .StartContainer("loop",
                                  [&](CancelToken& token) {
                                    while (!token.cancelled()) {
                                      std::this_thread::sleep_for(
                                          std::chrono::milliseconds(1));
                                    }
                                    saw_cancel = true;
                                  })
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(manager.KillContainer("loop").ok());
  EXPECT_TRUE(saw_cancel);
  EXPECT_TRUE(manager.KillContainer("loop").IsNotFound());
}

TEST(NodeManagerTest, RestartRunsBodyAgainAndCounts) {
  NodeManager manager;
  std::atomic<int> runs{0};
  ASSERT_TRUE(manager
                  .StartContainer("worker",
                                  [&](CancelToken& token) { ++runs; })
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(manager.RestartContainer("worker").ok());
  ASSERT_TRUE(manager.WaitContainer("worker").ok());
  EXPECT_EQ(runs, 2);
}

TEST(NodeManagerTest, ShutdownCancelsEverything) {
  auto manager = std::make_unique<NodeManager>();
  std::atomic<int> cancelled{0};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(manager
                    ->StartContainer("c" + std::to_string(i),
                                     [&](CancelToken& token) {
                                       while (!token.cancelled()) {
                                         std::this_thread::sleep_for(
                                             std::chrono::milliseconds(1));
                                       }
                                       ++cancelled;
                                     })
                    .ok());
  }
  manager->Shutdown();
  EXPECT_EQ(cancelled, 3);
  EXPECT_TRUE(manager->ListContainers().empty());
}

TEST(NodeManagerTest, ListContainers) {
  NodeManager manager;
  ASSERT_TRUE(manager.StartContainer("a", [](CancelToken&) {}).ok());
  ASSERT_TRUE(manager.StartContainer("b", [](CancelToken&) {}).ok());
  auto names = manager.ListContainers();
  EXPECT_EQ(names.size(), 2u);
}

}  // namespace
}  // namespace rafiki::cluster
