// Correctness of the lock-free serving-plane queues: the Vyukov MPSC ring
// (multi-producer storm with wrap-around, exact full-ring rejection, a
// close racing live producers), the futex doorbell (no lost wakeups), and
// the flat RingDeque. Run under -DRAFIKI_SANITIZE=thread to check the
// memory model, and under address to check the drain paths leak nothing.

#include "common/mpsc_ring.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace rafiki {
namespace {

TEST(MpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(MpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(MpscRing<int>(4096).capacity(), 4096u);
}

TEST(MpscRingTest, FifoSingleProducerWithWrapAround) {
  MpscRing<int> ring(4);
  // Push/pop far more than the capacity so head and tail lap the slot
  // array many times; FIFO order must survive every wrap.
  int next_out = 0;
  for (int v = 0; v < 1000;) {
    for (int k = 0; k < 3 && v < 1000; ++k, ++v) {
      ASSERT_EQ(ring.TryPush(int(v)), MpscRing<int>::PushResult::kOk);
    }
    ring.ConsumeBatch(4, [&](int&& got) { EXPECT_EQ(got, next_out++); });
  }
  EXPECT_EQ(next_out, 1000);
  EXPECT_EQ(ring.ApproxSize(), 0u);
}

TEST(MpscRingTest, FullRingRejectsExactlyAtCapacity) {
  MpscRing<int> ring(4);
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(ring.TryPush(int(v)), MpscRing<int>::PushResult::kOk);
  }
  // The consumer has fallen a whole lap behind: every further push is
  // rejected without blocking, and nothing is overwritten.
  EXPECT_EQ(ring.TryPush(99), MpscRing<int>::PushResult::kFull);
  EXPECT_EQ(ring.TryPush(98), MpscRing<int>::PushResult::kFull);
  std::vector<int> got;
  ring.ConsumeBatch(64, [&](int&& v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
  // Space freed: accepting again.
  EXPECT_EQ(ring.TryPush(7), MpscRing<int>::PushResult::kOk);
}

TEST(MpscRingTest, EightProducerStormDeliversEveryValueOnce) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 20'000;
  // Small ring: producers constantly hit kFull and retry, so the claim /
  // publish / release protocol is exercised under heavy wrap-around.
  MpscRing<uint64_t> ring(64);
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, &go, p] {
      while (!go.load()) {
      }
      for (int i = 0; i < kPerProducer; ++i) {
        uint64_t value = (static_cast<uint64_t>(p) << 32) |
                         static_cast<uint64_t>(i);
        while (ring.TryPush(uint64_t(value)) !=
               MpscRing<uint64_t>::PushResult::kOk) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<uint64_t> next(kProducers, 0);  // per-producer FIFO check
  uint64_t total = 0;
  go.store(true);
  while (total < static_cast<uint64_t>(kProducers) * kPerProducer) {
    total += ring.ConsumeBatch(64, [&](uint64_t&& v) {
      auto p = static_cast<size_t>(v >> 32);
      uint64_t i = v & 0xffffffffu;
      EXPECT_EQ(i, next[p]) << "producer " << p << " out of order";
      next[p] = i + 1;
    });
  }
  for (std::thread& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], static_cast<uint64_t>(kPerProducer));
  }
  EXPECT_EQ(ring.ApproxSize(), 0u);
}

TEST(MpscRingTest, CloseRacingProducersLosesNothing) {
  // Producers hammer the ring while the consumer closes it at an arbitrary
  // moment. Every push that reported kOk must come out of the final drain;
  // every push after the close must report kClosed. Repeat to vary timing.
  constexpr int kProducers = 4;
  for (int round = 0; round < 50; ++round) {
    MpscRing<int> ring(8);
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> closed_rejects{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          switch (ring.TryPush(1)) {
            case MpscRing<int>::PushResult::kOk:
              accepted.fetch_add(1, std::memory_order_relaxed);
              break;
            case MpscRing<int>::PushResult::kClosed:
              closed_rejects.fetch_add(1, std::memory_order_relaxed);
              return;  // terminal: the ring never reopens
            case MpscRing<int>::PushResult::kFull:
              std::this_thread::yield();
              break;
          }
        }
      });
    }
    uint64_t consumed = 0;
    for (int spins = 0; spins < 200; ++spins) {
      consumed += ring.ConsumeBatch(8, [](int&&) {});
    }
    ring.Close();
    stop.store(true);
    for (std::thread& t : producers) t.join();
    consumed += ring.ConsumeBatch(8, [](int&&) {});  // pre-close leftovers
    consumed += ring.DrainClosed([](int&&) {});
    EXPECT_EQ(consumed, accepted.load()) << "accepted values lost or duped";
    EXPECT_EQ(ring.TryPush(5), MpscRing<int>::PushResult::kClosed);
  }
}

TEST(MpscRingTest, DrainClosedReleasesOwnedValues) {
  // Values carrying ownership (shared_ptr) must be released by the drain —
  // the ASan job fails this test if the ring leaks.
  auto marker = std::make_shared<int>(7);
  MpscRing<std::shared_ptr<int>> ring(4);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(ring.TryPush(std::shared_ptr<int>(marker)),
              MpscRing<std::shared_ptr<int>>::PushResult::kOk);
  }
  ring.Close();
  size_t drained = ring.DrainClosed([](std::shared_ptr<int>&& p) {
    EXPECT_EQ(*p, 7);
  });
  EXPECT_EQ(drained, 3u);
  EXPECT_EQ(marker.use_count(), 1) << "ring kept references after drain";
}

TEST(FutexDoorbellTest, NotifyWakesSleepingWaiter) {
  FutexDoorbell bell;
  std::atomic<int> stage{0};
  std::thread consumer([&] {
    for (int i = 0; i < 100; ++i) {
      uint32_t epoch = bell.PrepareWait();
      if (stage.load() > i) {
        bell.CancelWait();
        continue;
      }
      bell.Wait(epoch, /*timeout_seconds=*/5.0);  // timeout = test failure
    }
  });
  // No-lost-wakeup protocol: publish (stage), then ring. The consumer
  // either sees the new stage at its re-check or its epoch is stale.
  for (int i = 1; i <= 100; ++i) {
    stage.store(i);
    bell.Notify();
    std::this_thread::yield();
  }
  consumer.join();  // hangs (then times out) if a wakeup was lost
}

TEST(RingDequeTest, FifoAcrossGrowthAndWrap) {
  RingDeque<int> dq;
  EXPECT_TRUE(dq.empty());
  // Interleave pushes and pops so head is nonzero when growth copies the
  // live range; FIFO order and indexing must survive.
  int out = 0, in = 0;
  for (int round = 0; round < 100; ++round) {
    for (int k = 0; k < 7; ++k) dq.push_back(in++);
    EXPECT_EQ(dq.front(), out);
    EXPECT_EQ(dq[dq.size() - 1], in - 1);
    for (int k = 0; k < 5; ++k) {
      EXPECT_EQ(dq.front(), out);
      dq.pop_front();
      ++out;
    }
  }
  while (!dq.empty()) {
    EXPECT_EQ(dq.front(), out++);
    dq.pop_front();
  }
  EXPECT_EQ(out, in);
}

TEST(RingDequeTest, PopReleasesOwnedResources) {
  auto marker = std::make_shared<int>(1);
  RingDeque<std::shared_ptr<int>> dq;
  dq.push_back(std::shared_ptr<int>(marker));
  EXPECT_EQ(marker.use_count(), 2);
  dq.pop_front();  // must reset the slot, not just move the head
  EXPECT_EQ(marker.use_count(), 1);
}

}  // namespace
}  // namespace rafiki
