#include <cmath>

#include "gtest/gtest.h"
#include "model/profile.h"
#include "serving/greedy_batch.h"
#include "serving/request.h"
#include "serving/reward.h"
#include "serving/rl_scheduler.h"
#include "serving/simulator.h"
#include "serving/sine_arrival.h"

namespace rafiki::serving {
namespace {

std::vector<model::ModelProfile> SingleModel() {
  return {model::FindProfile("inception_v3").value()};
}

std::vector<model::ModelProfile> TripleModels() {
  return {model::FindProfile("inception_v3").value(),
          model::FindProfile("inception_v4").value(),
          model::FindProfile("inception_resnet_v2").value()};
}

ServingObs MakeObs(const std::vector<model::ModelProfile>& models,
                   const std::vector<int64_t>& batch_sizes, size_t queue_len,
                   double oldest_wait, double tau = 0.56) {
  static std::vector<int64_t> b;
  static std::vector<model::ModelProfile> m;
  b = batch_sizes;
  m = models;
  ServingObs obs;
  obs.now = 100.0;
  obs.tau = tau;
  obs.batch_sizes = &b;
  obs.models = &m;
  obs.queue_len = queue_len;
  if (queue_len > 0) obs.queue_waits = {oldest_wait};
  obs.busy_remaining.assign(models.size(), 0.0);
  return obs;
}

TEST(RequestQueueTest, FifoPopAndWaits) {
  RequestQueue q;
  q.Push({1, 0.0});
  q.Push({2, 1.0});
  q.Push({3, 2.0});
  EXPECT_DOUBLE_EQ(q.OldestWait(5.0), 5.0);
  auto waits = q.Waits(5.0, 10);
  EXPECT_EQ(waits.size(), 3u);
  EXPECT_DOUBLE_EQ(waits[0], 5.0);
  EXPECT_DOUBLE_EQ(waits[2], 3.0);
  auto batch = q.PopOldest(2);
  EXPECT_EQ(batch[0].id, 1);
  EXPECT_EQ(batch[1].id, 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST(RequestQueueTest, CapacityDrops) {
  RequestQueue q(2);
  EXPECT_TRUE(q.Push({1, 0.0}));
  EXPECT_TRUE(q.Push({2, 0.0}));
  EXPECT_FALSE(q.Push({3, 0.0}));
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(SineArrivalTest, CalibrationMatchesEquations) {
  SineArrivalProcess arrivals(/*target_rate=*/272.0, /*period=*/280.0, 1);
  // Equation 9: peak is 1.1 * target.
  EXPECT_NEAR(arrivals.peak_rate(), 1.1 * 272.0, 1e-6);
  // Equation 8: rate above target for 20% of the cycle.
  EXPECT_NEAR(arrivals.FractionAboveTarget(), 0.2, 0.01);
  // Trough is non-negative.
  EXPECT_GE(arrivals.offset() - arrivals.gamma(), 0.0);
}

TEST(SineArrivalTest, ArrivalsIntegrateToExpectedCount) {
  SineArrivalProcess arrivals(100.0, 50.0, 2, /*noise_stddev=*/0.1);
  int64_t total = 0;
  double t = 0.0, dt = 0.05;
  for (int i = 0; i < 2000; ++i, t += dt) {
    total += arrivals.Arrivals(t, dt);
  }
  // 100 s of mean-rate ~57.6% of peak... integrate the analytic rate.
  double expected = 0.0;
  for (int i = 0; i < 2000; ++i) {
    expected += arrivals.Rate(i * dt) * dt;
  }
  EXPECT_NEAR(static_cast<double>(total), expected, expected * 0.05);
}

TEST(SineArrivalTest, NoiseIsSeedDeterministic) {
  SineArrivalProcess a(100.0, 50.0, 7);
  SineArrivalProcess b(100.0, 50.0, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Arrivals(i * 0.1, 0.1), b.Arrivals(i * 0.1, 0.1));
  }
}

TEST(LargestFeasibleBatchTest, PicksFloorBatch) {
  std::vector<int64_t> B{16, 32, 48, 64};
  EXPECT_EQ(LargestFeasibleBatch(B, 70), 64);
  EXPECT_EQ(LargestFeasibleBatch(B, 64), 64);
  EXPECT_EQ(LargestFeasibleBatch(B, 40), 32);
  EXPECT_EQ(LargestFeasibleBatch(B, 16), 16);
  EXPECT_EQ(LargestFeasibleBatch(B, 10), 0);
  EXPECT_EQ(LargestFeasibleBatch(B, 0), 0);
}

TEST(GreedyBatchTest, FullQueueDispatchesMaxBatch) {
  GreedyBatchPolicy policy(0);
  auto obs = MakeObs(SingleModel(), {16, 32, 48, 64}, 100, 0.01);
  ServingAction a = policy.Decide(obs);
  EXPECT_TRUE(a.process);
  EXPECT_EQ(a.batch_size, 64);
  EXPECT_EQ(a.model_mask, 1u);
}

TEST(GreedyBatchTest, ShortQueueWaitsUntilDeadline) {
  GreedyBatchPolicy policy(0);
  // 20 requests, fresh: c(16)=0.07 + 0 + 0.056 < 0.56 -> wait.
  auto obs = MakeObs(SingleModel(), {16, 32, 48, 64}, 20, 0.0);
  EXPECT_FALSE(policy.Decide(obs).process);
  // Same queue but the oldest is about to overdue -> flush 16.
  obs = MakeObs(SingleModel(), {16, 32, 48, 64}, 20, 0.5);
  ServingAction a = policy.Decide(obs);
  EXPECT_TRUE(a.process);
  EXPECT_EQ(a.batch_size, 16);
}

TEST(GreedyBatchTest, PartialFlushBelowMinBatch) {
  GreedyBatchPolicy policy(0);
  // 5 requests (below min B) and deadline pressure -> flush 5.
  auto obs = MakeObs(SingleModel(), {16, 32, 48, 64}, 5, 0.54);
  ServingAction a = policy.Decide(obs);
  EXPECT_TRUE(a.process);
  EXPECT_EQ(a.batch_size, 5);
}

TEST(GreedyBatchTest, BusyModelWaits) {
  GreedyBatchPolicy policy(0);
  auto obs = MakeObs(SingleModel(), {16, 32, 48, 64}, 100, 0.5);
  obs.busy_remaining[0] = 0.1;
  EXPECT_FALSE(policy.Decide(obs).process);
}

TEST(GreedyBatchTest, EmptyQueueWaits) {
  GreedyBatchPolicy policy(0);
  auto obs = MakeObs(SingleModel(), {16, 32, 48, 64}, 0, 0.0);
  EXPECT_FALSE(policy.Decide(obs).process);
}

TEST(SyncEnsembleTest, SelectsAllModels) {
  SyncEnsembleGreedyPolicy policy;
  auto obs = MakeObs(TripleModels(), {16, 32, 48, 64}, 100, 0.01);
  ServingAction a = policy.Decide(obs);
  EXPECT_TRUE(a.process);
  EXPECT_EQ(a.model_mask, 0b111u);
  // One busy model blocks the synchronous ensemble.
  obs.busy_remaining[2] = 0.2;
  EXPECT_FALSE(policy.Decide(obs).process);
}

TEST(AsyncNoEnsembleTest, RoundRobinsOverFreeModels) {
  AsyncNoEnsemblePolicy policy;
  auto obs = MakeObs(TripleModels(), {16, 32, 48, 64}, 200, 0.01);
  ServingAction a1 = policy.Decide(obs);
  ServingAction a2 = policy.Decide(obs);
  ServingAction a3 = policy.Decide(obs);
  EXPECT_TRUE(a1.process && a2.process && a3.process);
  EXPECT_NE(a1.model_mask, a2.model_mask);
  EXPECT_NE(a2.model_mask, a3.model_mask);
  // Single-model masks only (no ensemble).
  for (uint32_t m : {a1.model_mask, a2.model_mask, a3.model_mask}) {
    EXPECT_EQ(__builtin_popcount(m), 1);
  }
}

TEST(AsyncNoEnsembleTest, SkipsBusyModels) {
  AsyncNoEnsemblePolicy policy;
  auto obs = MakeObs(TripleModels(), {16, 32, 48, 64}, 200, 0.01);
  obs.busy_remaining[0] = 1.0;
  ServingAction a = policy.Decide(obs);
  EXPECT_TRUE(a.process);
  EXPECT_NE(a.model_mask, 0b001u);
}

TEST(RewardTest, Equation7Values) {
  EXPECT_DOUBLE_EQ(BatchReward(0.8, 64, 0, 1.0), 0.8 * 64);
  EXPECT_DOUBLE_EQ(BatchReward(0.8, 64, 10, 1.0), 0.8 * 54);
  // beta = 0 ignores overdues entirely (Figure 16 ablation).
  EXPECT_DOUBLE_EQ(BatchReward(0.8, 64, 10, 0.0), 0.8 * 64);
  EXPECT_DOUBLE_EQ(BatchReward(0.8, 16, 32, 2.0), 0.8 * (16 - 64));
}

TEST(RlSchedulerTest, ActionSpaceSizeMatchesPaper) {
  // (2^|M| - 1) * |B| (§5.2).
  RlSchedulerOptions options;
  RlSchedulerPolicy single(1, {16, 32, 48, 64}, nullptr, options);
  EXPECT_EQ(single.num_actions(), 4);
  model::EnsembleAccuracyTable table(TripleModels(),
                                     model::PredictionSimOptions{}, 2000);
  RlSchedulerPolicy multi(3, {16, 32, 48, 64}, &table, options);
  EXPECT_EQ(multi.num_actions(), 7 * 4);
}

TEST(RlSchedulerTest, StateFeaturization) {
  RlSchedulerOptions options;
  options.queue_feature_len = 4;
  model::EnsembleAccuracyTable table(TripleModels(),
                                     model::PredictionSimOptions{}, 2000);
  RlSchedulerPolicy policy(3, {16, 32}, &table, options);
  // 4 waits + 1 len + 3*2 c(m,b) + 3 busy = 14.
  EXPECT_EQ(policy.state_dim(), 14);
  auto obs = MakeObs(TripleModels(), {16, 32}, 2, 0.28);
  obs.queue_waits = {0.28, 0.14};
  obs.busy_remaining = {0.0, 0.28, 0.56};
  std::vector<double> f = policy.Featurize(obs);
  ASSERT_EQ(f.size(), 14u);
  EXPECT_NEAR(f[0], 0.5, 1e-9);   // 0.28 / tau
  EXPECT_NEAR(f[1], 0.25, 1e-9);  // 0.14 / tau
  EXPECT_NEAR(f[2], 0.0, 1e-9);   // padding
  EXPECT_NEAR(f[13], 1.0, 1e-9);  // busy 0.56 / tau
}

TEST(RlSchedulerTest, SingleModelOmitsModelStatus) {
  // §7.2.1: "the state is the same except the model related status is
  // removed".
  RlSchedulerOptions options;
  options.queue_feature_len = 8;
  RlSchedulerPolicy policy(1, {16, 32, 48, 64}, nullptr, options);
  EXPECT_EQ(policy.state_dim(), 9);  // 8 waits + queue len only
}

TEST(RlSchedulerTest, EmptyQueueNeverProcesses) {
  RlSchedulerOptions options;
  RlSchedulerPolicy policy(1, {16, 32, 48, 64}, nullptr, options);
  auto obs = MakeObs(SingleModel(), {16, 32, 48, 64}, 0, 0.0);
  EXPECT_FALSE(policy.Decide(obs).process);
}

TEST(SimulatorTest, ConservationOfRequests) {
  ServingSimOptions options;
  options.duration_seconds = 120.0;
  ServingSimulator sim(SingleModel(), nullptr, options);
  SineArrivalProcess arrivals(250.0, 140.0, 3);
  GreedyBatchPolicy policy(0);
  ServingMetrics m = sim.Run(policy, arrivals);
  EXPECT_GT(m.total_arrived, 0);
  // Exact conservation: arrived = processed + dropped + residual queue.
  EXPECT_EQ(m.total_arrived,
            m.total_processed + m.total_dropped + m.total_residual);
  EXPECT_GE(m.total_processed,
            static_cast<int64_t>(0.9 * static_cast<double>(m.total_arrived)));
  EXPECT_FALSE(m.windows.empty());
}

TEST(SimulatorTest, OverloadAccountingBalancesExactly) {
  // Saturating load with a tiny queue forces drops AND a residual queue,
  // exercising both fixed accounting paths: the overflow metrics bucket
  // (batches completing past the horizon) folded into the last window, and
  // the end-of-run residual counted as overdue.
  ServingSimOptions options;
  options.duration_seconds = 60.0;
  options.queue_capacity = 200;
  ServingSimulator sim(SingleModel(), nullptr, options);
  // Single inception_v3 caps out at ~272 req/s at b = 64.
  SineArrivalProcess arrivals(500.0, 70.0, 11);
  GreedyBatchPolicy policy(0);
  ServingMetrics m = sim.Run(policy, arrivals);

  EXPECT_GT(m.total_dropped, 0) << "test load should overflow the queue";
  EXPECT_GT(m.total_residual, 0) << "test load should leave a residual";
  EXPECT_EQ(m.total_arrived,
            m.total_processed + m.total_dropped + m.total_residual);

  int64_t window_arrived = 0;
  int64_t window_processed = 0;
  int64_t window_overdue = 0;
  for (const WindowSample& w : m.windows) {
    window_arrived += w.arrived;
    window_processed += w.processed;
    window_overdue += w.overdue;
  }
  EXPECT_EQ(window_arrived, m.total_arrived);
  EXPECT_EQ(window_processed, m.total_processed)
      << "overflow bucket was not folded into the last window";
  EXPECT_EQ(window_overdue, m.total_overdue + m.total_dropped);
}

TEST(SimulatorTest, UnderloadHasFewOverdue) {
  ServingSimOptions options;
  options.duration_seconds = 200.0;
  ServingSimulator sim(SingleModel(), nullptr, options);
  // 100 req/s is far below the 272 req/s capacity.
  SineArrivalProcess arrivals(100.0, 140.0, 4);
  GreedyBatchPolicy policy(0);
  ServingMetrics m = sim.Run(policy, arrivals);
  EXPECT_LT(m.OverdueFraction(), 0.05);
  EXPECT_LT(m.mean_latency, options.tau);
}

TEST(SimulatorTest, ThroughputCappedByModel) {
  ServingSimOptions options;
  options.duration_seconds = 150.0;
  ServingSimulator sim(SingleModel(), nullptr, options);
  // Double the sustainable rate: processing must cap near 278 req/s.
  SineArrivalProcess arrivals(550.0, 140.0, 5);
  GreedyBatchPolicy policy(0);
  ServingMetrics m = sim.Run(policy, arrivals);
  double processed_rate = static_cast<double>(m.total_processed) /
                          options.duration_seconds;
  EXPECT_LT(processed_rate, 290.0);
  EXPECT_GT(processed_rate, 250.0);
}

TEST(SimulatorTest, SyncEnsembleAccuracyIsConstant) {
  model::EnsembleAccuracyTable table(TripleModels(),
                                     model::PredictionSimOptions{}, 5000);
  ServingSimOptions options;
  options.duration_seconds = 100.0;
  ServingSimulator sim(TripleModels(), &table, options);
  SineArrivalProcess arrivals(128.0, 280.0, 6);
  SyncEnsembleGreedyPolicy policy;
  ServingMetrics m = sim.Run(policy, arrivals);
  // Figure 14a: the all-models baseline has one fixed accuracy.
  double expected = table.Accuracy(0b111);
  for (const WindowSample& w : m.windows) {
    if (w.processed_per_sec > 0) {
      EXPECT_NEAR(w.mean_accuracy, expected, 1e-9);
    }
  }
}

TEST(SimulatorTest, AsyncBaselineHasHigherThroughputLowerAccuracy) {
  model::EnsembleAccuracyTable table(TripleModels(),
                                     model::PredictionSimOptions{}, 5000);
  ServingSimOptions options;
  options.duration_seconds = 150.0;

  ServingSimulator sim1(TripleModels(), &table, options);
  SineArrivalProcess a1(500.0, 280.0, 7);
  AsyncNoEnsemblePolicy async_policy;
  ServingMetrics async_m = sim1.Run(async_policy, a1);

  ServingSimulator sim2(TripleModels(), &table, options);
  SineArrivalProcess a2(500.0, 280.0, 7);
  SyncEnsembleGreedyPolicy sync_policy;
  ServingMetrics sync_m = sim2.Run(sync_policy, a2);

  // At overload, async (no ensemble) processes more but less accurately.
  EXPECT_GT(async_m.total_processed, sync_m.total_processed);
  EXPECT_LT(async_m.mean_accuracy, sync_m.mean_accuracy);
}

TEST(SimulatorTest, RlLearnsToAvoidLeftoverOverdue) {
  // The Figure 13 effect: at min-throughput arrivals the greedy policy
  // leaves sub-batch requests to overdue; the RL scheduler learns to flush
  // them. Train, then compare a fresh evaluation run.
  ServingSimOptions options;
  options.duration_seconds = 400.0;
  auto model = SingleModel();
  double min_rate = 16.0 / model[0].BatchLatency(16);

  ServingSimulator greedy_sim(model, nullptr, options);
  SineArrivalProcess a1(min_rate, 280.0, 8);
  GreedyBatchPolicy greedy(0);
  ServingMetrics greedy_m = greedy_sim.Run(greedy, a1);

  RlSchedulerOptions rl_options;
  RlSchedulerPolicy rl(1, options.batch_sizes, nullptr, rl_options);
  ServingSimOptions train = options;
  train.duration_seconds = 2000.0;
  ServingSimulator train_sim(model, nullptr, train);
  SineArrivalProcess a2(min_rate, 280.0, 9);
  train_sim.Run(rl, a2);

  ServingSimulator eval_sim(model, nullptr, options);
  SineArrivalProcess a3(min_rate, 280.0, 10);
  ServingMetrics rl_m = eval_sim.Run(rl, a3);

  EXPECT_LE(rl_m.total_overdue, greedy_m.total_overdue)
      << "trained RL should not have more overdue than greedy at low rate";
}

}  // namespace
}  // namespace rafiki::serving
