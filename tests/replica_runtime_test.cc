// The replicated serving plane (DESIGN.md §15): sharded replica
// dispatchers behind the least-loaded router, cooperative work stealing,
// ReplicaController scale-up/down storms, and the accuracy-variant
// downshift. The storm tests assert the two book-keeping invariants —
// exact conservation (arrived == processed + dropped + expired + queued)
// and exactly-once 504 charging (overdue == reward_overdue +
// reward_pending_overdue) — while the controller is actively resizing;
// the TSan/ASan CI matrix runs them too.

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mpsc_ring.h"
#include "common/string_util.h"
#include "gtest/gtest.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/socket.h"
#include "nn/layer.h"
#include "ps/parameter_server.h"
#include "rafiki/http_gateway.h"
#include "serving/greedy_batch.h"
#include "serving/inference_runtime.h"

namespace rafiki::serving {
namespace {

/// A deterministic servable: y = x W with W = I, so argmax(features) is
/// the predicted label.
ServableModel MakeIdentityModel(int64_t dim, double accuracy,
                                const std::string& name) {
  Rng rng(1);
  auto linear = std::make_unique<nn::Linear>(dim, dim, /*init_std=*/0.0f,
                                             rng, "fc0");
  Tensor& weight = linear->Params()[0]->value;
  for (int64_t i = 0; i < dim; ++i) weight.at2(i, i) = 1.0f;
  ServableModel model;
  model.net.Add(std::move(linear));
  model.accuracy = accuracy;
  model.name = name;
  return model;
}

/// A compute-heavy servable (labels are arbitrary): slows the dispatch
/// loop enough that queues build up and the controller/stealing paths have
/// real backlog to work against.
ServableModel MakeHeavyModel(int64_t dim, int64_t hidden, double accuracy,
                             const std::string& name) {
  Rng rng(7);
  ServableModel model;
  model.net = nn::MakeMlp({dim, hidden, dim}, /*init_std=*/0.05f,
                          /*dropout=*/0.0f, rng);
  model.accuracy = accuracy;
  model.name = name;
  model.input_dim = dim;
  return model;
}

Tensor OneHot(int64_t dim, int64_t hot) {
  Tensor t({1, dim});
  t.at(hot) = 1.0f;
  return t;
}

InferenceJobMetrics MustMetrics(InferenceRuntime& runtime,
                                const std::string& job) {
  auto metrics = runtime.Metrics(job);
  EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
  return metrics.ok() ? *metrics : InferenceJobMetrics{};
}

/// The 504 charging invariant must hold at EVERY metrics observation, not
/// just at quiescence: expiries and their reward charges are folded under
/// the same per-replica mutex hold Metrics reads through.
void ExpectChargingInvariant(const InferenceJobMetrics& m) {
  EXPECT_EQ(m.overdue, m.reward_overdue + m.reward_pending_overdue)
      << "overdue=" << m.overdue << " charged=" << m.reward_overdue
      << " pending=" << m.reward_pending_overdue;
}

TEST(ReplicaRuntimeTest, StaticReplicasServeCorrectlyAndAggregate) {
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(8, 0.9, "id"));
  RuntimeOptions options;
  options.tau = 0.05;  // short batch-fill waits keep the test fast
  options.replicas = 3;
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());

  auto first = MustMetrics(runtime, "j");
  EXPECT_EQ(first.replicas, 3);
  EXPECT_EQ(first.replicas_peak, 3);
  ASSERT_EQ(first.replica_gauges.size(), 3u);

  constexpr int kPerThread = 64;
  constexpr int kThreads = 4;
  std::atomic<int> wrong{0};
  std::atomic<int> callbacks{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        int64_t hot = (t * kPerThread + i) % 8;
        auto submitted = runtime.Submit("j", OneHot(8, hot));
        ASSERT_TRUE(submitted.ok());
        auto answer = submitted->get();
        ++callbacks;
        ASSERT_TRUE(answer.ok());
        if (answer->label != hot) ++wrong;
      }
    });
  }
  for (auto& p : producers) p.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(callbacks.load(), kThreads * kPerThread);
  auto metrics = MustMetrics(runtime, "j");
  EXPECT_EQ(metrics.arrived, kThreads * kPerThread);
  EXPECT_EQ(metrics.processed, kThreads * kPerThread);
  EXPECT_EQ(metrics.dropped, 0);
  EXPECT_EQ(metrics.queue_depth, 0);
  // The per-replica gauge rows add up to the aggregate exactly.
  int64_t per_replica = 0;
  for (const ReplicaGauges& g : metrics.replica_gauges) {
    per_replica += g.processed;
  }
  EXPECT_EQ(per_replica, metrics.processed);
  ExpectChargingInvariant(metrics);
  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

TEST(ReplicaRuntimeTest, PolicyFactorySeesReplicaIndices) {
  std::mutex mu;
  std::set<size_t> indices;
  size_t num_replicas_seen = 0;
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(4, 0.9, "id"));
  RuntimeOptions options;
  options.replicas = 3;
  options.policy_factory =
      [&](const PolicyInit& init) -> std::unique_ptr<SchedulerPolicy> {
    {
      std::lock_guard<std::mutex> lock(mu);
      indices.insert(init.replica_index);
      num_replicas_seen = init.num_replicas;
    }
    return std::make_unique<GreedyBatchPolicy>(0,
                                               init.backoff_delta_fraction);
  };
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    // Deploy validates the factory once with index 0, then builds one
    // policy per started replica.
    EXPECT_EQ(indices, (std::set<size_t>{0, 1, 2}));
    EXPECT_EQ(num_replicas_seen, 3u);
  }
  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

TEST(ReplicaRuntimeTest, WorkStealingMovesWorkAndCompletesExactlyOnce) {
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeHeavyModel(32, 512, 0.9, "heavy"));
  RuntimeOptions options;
  options.tau = 2.0;  // soft: nothing expires, every request is answered
  options.batch_sizes = {1, 2};
  options.queue_capacity = 4096;
  options.replicas = 2;
  options.steal_threshold = 1;
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());

  // Repeated bursts: the router splits each burst by load, and whichever
  // replica drains first goes idle while the other still holds backlog —
  // the steal window. Statistical but heavily repeated, with a bound.
  std::atomic<int64_t> accepted{0};
  std::atomic<int64_t> callbacks{0};
  std::atomic<int64_t> failed{0};
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(20);
  int64_t steals = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    constexpr int kBurst = 96;
    std::vector<std::future<Result<EnsemblePrediction>>> futures;
    futures.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      auto submitted = runtime.Submit("j", OneHot(32, i % 32));
      if (!submitted.ok()) continue;  // transient queue-full: fine
      ++accepted;
      futures.push_back(std::move(*submitted));
    }
    for (auto& f : futures) {
      Result<EnsemblePrediction> answer = f.get();
      ++callbacks;
      if (!answer.ok()) ++failed;
    }
    steals = MustMetrics(runtime, "j").steals;
    if (steals > 0) break;
  }
  EXPECT_GT(steals, 0) << "no steal observed within the time bound";
  // Exactly-once: every accepted request produced exactly one callback,
  // and none failed (the job was never resized or stopped).
  EXPECT_EQ(callbacks.load(), accepted.load());
  EXPECT_EQ(failed.load(), 0);

  auto metrics = MustMetrics(runtime, "j");
  EXPECT_EQ(metrics.arrived,
            metrics.processed + metrics.dropped + metrics.expired +
                metrics.queue_depth);
  EXPECT_EQ(metrics.processed, accepted.load());
  // The stolen requests are attributed to the replicas that received them.
  int64_t per_replica_steals = 0;
  for (const ReplicaGauges& g : metrics.replica_gauges) {
    per_replica_steals += g.steals;
  }
  EXPECT_EQ(per_replica_steals, metrics.steals);
  ExpectChargingInvariant(metrics);
  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

TEST(ReplicaRuntimeTest, AutoscaleStormConservesAndCharges504ExactlyOnce) {
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeHeavyModel(32, 512, 0.9, "heavy"));
  RuntimeOptions options;
  options.tau = 0.01;
  options.expire_overdue = true;  // 504 path active during resizes
  options.batch_sizes = {1, 2, 4};
  options.queue_capacity = 512;
  options.replicas = 1;
  options.min_replicas = 1;
  options.max_replicas = 4;
  options.autoscale = true;
  options.autoscale_interval = 0.002;
  options.autoscale_dwell = 0.02;
  options.scale_up_pressure = 0.5;
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());

  std::atomic<int64_t> accepted{0};
  std::atomic<int64_t> ok_answers{0};
  std::atomic<int64_t> deadline_504{0};
  std::atomic<int64_t> other_status{0};
  std::atomic<bool> stop{false};

  constexpr int kThreads = 4;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(100 + t));
      while (!stop.load(std::memory_order_relaxed)) {
        // Bursty open-loop-ish offered load: floods to force scale-up,
        // brief pauses so some 504s and some clean completions both occur.
        for (int i = 0; i < 40 && !stop.load(std::memory_order_relaxed);
             ++i) {
          Status submitted = runtime.SubmitAsync(
              "j", OneHot(32, rng.Next64() % 32),
              [&](Result<EnsemblePrediction> answer) {
                if (answer.ok()) {
                  ++ok_answers;
                } else if (answer.status().code() ==
                           StatusCode::kDeadlineExceeded) {
                  ++deadline_504;
                } else {
                  ++other_status;
                }
              });
          if (submitted.ok()) ++accepted;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  // While the storm runs and the controller resizes, both invariants must
  // hold at every observation point.
  auto storm_end = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(1500);
  while (std::chrono::steady_clock::now() < storm_end) {
    auto m = MustMetrics(runtime, "j");
    ExpectChargingInvariant(m);
    EXPECT_GE(m.replicas, 1);
    EXPECT_LE(m.replicas, 4);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop = true;
  for (auto& p : producers) p.join();

  // Quiesce: every accepted request resolves (processed or expired).
  auto drain_deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  InferenceJobMetrics m;
  do {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    m = MustMetrics(runtime, "j");
  } while (m.queue_depth > 0 &&
           std::chrono::steady_clock::now() < drain_deadline);
  EXPECT_EQ(m.queue_depth, 0);

  // The controller actually resized: the storm must have pushed past one
  // replica.
  EXPECT_GT(m.replicas_peak, 1);
  EXPECT_GE(m.scale_ups, 1);

  // Exactly-once completion: one callback per accepted request, and the
  // callback totals match the runtime's own books.
  EXPECT_EQ(ok_answers.load() + deadline_504.load() + other_status.load(),
            accepted.load());
  EXPECT_EQ(other_status.load(), 0);
  EXPECT_EQ(m.processed, ok_answers.load());
  EXPECT_EQ(m.expired, deadline_504.load());

  // Exact conservation at quiescence, with the 504 charge books closed.
  EXPECT_EQ(m.arrived, m.processed + m.dropped + m.expired + m.queue_depth);
  ExpectChargingInvariant(m);

  // With the load gone the controller must shrink back toward min (the
  // scale-DOWN half of the storm: retiring replicas re-routes or finishes
  // their queues without breaking any of the above).
  auto shrink_deadline = std::chrono::steady_clock::now() +
                         std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < shrink_deadline) {
    m = MustMetrics(runtime, "j");
    ExpectChargingInvariant(m);
    if (m.scale_downs >= 1 && m.replicas == 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(m.scale_downs, 1);
  EXPECT_EQ(m.replicas, 1);
  EXPECT_EQ(m.arrived, m.processed + m.dropped + m.expired + m.queue_depth);

  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

TEST(ReplicaRuntimeTest, VariantDownshiftTradesAccuracyForLatency) {
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  // Slow accurate model + fast cheap model: level 1 drops the slow one.
  models.push_back(MakeHeavyModel(16, 2048, 0.95, "slow"));
  models.push_back(MakeIdentityModel(16, 0.60, "fast"));
  RuntimeOptions options;
  options.tau = 0.002;  // nearly everything is overdue while "slow" runs
  options.batch_sizes = {1, 2, 4};
  options.queue_capacity = 512;
  options.replicas = 1;
  options.max_replicas = 1;  // horizontal scaling exhausted from the start
  options.autoscale = true;  // the controller also drives the variant ladder
  options.autoscale_interval = 0.002;
  options.autoscale_dwell = 0.02;
  options.downshift_overdue_rate = 0.10;
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> accepted{0};
  std::atomic<int64_t> callbacks{0};
  std::thread producer([&] {
    Rng rng(3);
    while (!stop.load(std::memory_order_relaxed)) {
      // Bursts keep a deep standing queue, so queueing delay (not compute)
      // pushes nearly every completion past the 2 ms tau.
      for (int i = 0; i < 256 && !stop.load(std::memory_order_relaxed);
           ++i) {
        Status submitted = runtime.SubmitAsync(
            "j", OneHot(16, rng.Next64() % 16),
            [&](Result<EnsemblePrediction>) { ++callbacks; });
        if (submitted.ok()) ++accepted;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Sustained overdue pressure with no replica headroom must downshift the
  // variant within the bound.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(15);
  InferenceJobMetrics m;
  while (std::chrono::steady_clock::now() < deadline) {
    m = MustMetrics(runtime, "j");
    ExpectChargingInvariant(m);
    if (m.variant_level >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop = true;
  producer.join();
  EXPECT_GE(m.variant_level, 1);
  EXPECT_GE(m.variant_shifts, 1);

  // Quiesce and close the books: exactly one callback per accepted
  // request even across the variant shift.
  auto drain_deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  do {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    m = MustMetrics(runtime, "j");
  } while (m.queue_depth > 0 &&
           std::chrono::steady_clock::now() < drain_deadline);
  EXPECT_EQ(m.queue_depth, 0);
  EXPECT_EQ(callbacks.load(), accepted.load());
  EXPECT_EQ(m.arrived, m.processed + m.dropped + m.expired + m.queue_depth);
  ExpectChargingInvariant(m);
  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

TEST(ReplicaRuntimeTest, MpscRingReopenServesASecondConsumerLifetime) {
  MpscRing<int> ring(8);
  EXPECT_EQ(ring.TryPush(1), MpscRing<int>::PushResult::kOk);
  EXPECT_EQ(ring.TryPush(2), MpscRing<int>::PushResult::kOk);
  ring.Close();
  EXPECT_EQ(ring.TryPush(3), MpscRing<int>::PushResult::kClosed);
  std::vector<int> drained;
  ring.DrainClosed([&](int&& v) { drained.push_back(v); });
  EXPECT_EQ(drained, (std::vector<int>{1, 2}));

  // Reopen: producers succeed again and the next consumer sees exactly the
  // post-reopen values (scale-down/up cycle of a replica slot).
  ring.Reopen();
  EXPECT_FALSE(ring.closed());
  EXPECT_EQ(ring.TryPush(4), MpscRing<int>::PushResult::kOk);
  EXPECT_EQ(ring.TryPush(5), MpscRing<int>::PushResult::kOk);
  std::vector<int> second;
  ring.ConsumeBatch(16, [&](int&& v) { second.push_back(v); });
  EXPECT_EQ(second, (std::vector<int>{4, 5}));

  // A second close/drain cycle still conserves.
  EXPECT_EQ(ring.TryPush(6), MpscRing<int>::PushResult::kOk);
  ring.Close();
  std::vector<int> last;
  ring.DrainClosed([&](int&& v) { last.push_back(v); });
  EXPECT_EQ(last, (std::vector<int>{6}));
}

/// Reads until `want` responses parsed (or peer close); returns
/// (status, body) pairs in wire order.
std::vector<std::pair<int, std::string>> ReadResponses(int fd, size_t want) {
  std::vector<std::pair<int, std::string>> out;
  std::string buffered;
  net::HttpResponseParser parser;
  char buf[4096];
  while (out.size() < want) {
    Result<size_t> n = net::RecvSome(fd, buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    buffered.append(buf, *n);
    for (;;) {
      size_t consumed = parser.Feed(buffered.data(), buffered.size());
      buffered.erase(0, consumed);
      if (!parser.done()) break;
      out.emplace_back(parser.status(), parser.body());
      parser = net::HttpResponseParser();
      if (buffered.empty()) break;
    }
  }
  return out;
}

std::string Field(const std::string& body, const std::string& key) {
  for (const std::string& pair : Split(body, '&')) {
    if (StartsWith(pair, key + "=")) return pair.substr(key.size() + 1);
  }
  return "";
}

TEST(ReplicaRuntimeTest, PipelinedHttpResponsesStayInSubmitOrder) {
  // The per-connection guarantee the work-stealing design must not break:
  // requests pipelined on one connection come back in submit order even
  // when their batches execute on different replicas (or migrate between
  // them mid-queue). The HTTP data plane sequences responses per
  // connection; this drives it end-to-end through a multi-replica job.
  api::Rafiki service;
  ps::ModelCheckpoint ckpt;
  constexpr int64_t kDim = 8;
  Tensor weight({kDim, kDim});
  for (int64_t i = 0; i < kDim; ++i) weight.at2(i, i) = 1.0f;
  ckpt.params.emplace_back("fc0/weight", weight);
  ckpt.params.emplace_back("fc0/bias", Tensor({1, kDim}));
  ckpt.meta.accuracy = 0.9;
  ASSERT_TRUE(service.parameter_server()
                  .PutModel("serve/replica-test/best", ckpt)
                  .ok());
  api::ModelHandle handle;
  handle.scope = "serve/replica-test/best";
  handle.model_name = "mlp";
  handle.accuracy = 0.9;
  RuntimeOptions serve_opts;
  serve_opts.tau = 0.5;
  serve_opts.batch_sizes = {1};  // maximal interleaving across replicas
  serve_opts.replicas = 2;
  serve_opts.steal_threshold = 1;
  auto deployed = service.Deploy({handle}, serve_opts);
  ASSERT_TRUE(deployed.ok()) << deployed.status().ToString();

  api::Gateway gateway(&service);
  net::HttpServerOptions opts;
  opts.num_workers = 1;
  opts.num_handler_threads = 2;
  opts.max_pipeline = 64;
  net::HttpServer server(api::MakeGatewayAsyncHttpHandler(&gateway), opts);
  ASSERT_TRUE(server.Start().ok());

  for (int round = 0; round < 4; ++round) {
    auto sock = net::ConnectTcp("127.0.0.1", server.port(), 10.0);
    ASSERT_TRUE(sock.ok());
    constexpr size_t kPipelined = 32;
    std::string wire;
    for (size_t i = 0; i < kPipelined; ++i) {
      std::string body;
      for (int64_t d = 0; d < kDim; ++d) {
        body += (static_cast<size_t>(d) == i % kDim) ? "1" : "0";
        if (d + 1 < kDim) body += ",";
      }
      wire += "POST /query?job=" + *deployed + " HTTP/1.1\r\n" +
              "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" +
              body;
    }
    ASSERT_TRUE(net::SendAll(sock->fd(), wire.data(), wire.size()).ok());
    auto responses = ReadResponses(sock->fd(), kPipelined);
    ASSERT_EQ(responses.size(), kPipelined) << "round " << round;
    for (size_t i = 0; i < kPipelined; ++i) {
      EXPECT_EQ(responses[i].first, 200) << responses[i].second;
      // The label identifies the request, so order is provable from the
      // wire: response i must answer request i.
      EXPECT_EQ(Field(responses[i].second, "label"),
                std::to_string(i % kDim))
          << "round " << round << " position " << i;
    }
  }

  auto metrics = service.InferenceMetrics(*deployed);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->replicas, 2);
  EXPECT_EQ(metrics->arrived,
            metrics->processed + metrics->dropped + metrics->expired +
                metrics->queue_depth);
  server.Stop();
}

}  // namespace
}  // namespace rafiki::serving
