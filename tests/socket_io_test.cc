#include "net/socket.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace rafiki::net {
namespace {

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(pipe(fds), 0); }
  ~Pipe() {
    CloseRead();
    CloseWrite();
  }
  int read_fd() const { return fds[0]; }
  int write_fd() const { return fds[1]; }
  void CloseRead() {
    if (fds[0] >= 0) close(fds[0]);
    fds[0] = -1;
  }
  void CloseWrite() {
    if (fds[1] >= 0) close(fds[1]);
    fds[1] = -1;
  }
};

TEST(SocketIoTest, WriteFullThenReadFullRoundTrips) {
  Pipe p;
  std::string data(4096, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 31);
  }
  ASSERT_TRUE(WriteFull(p.write_fd(), data.data(), data.size()).ok());
  std::string got(data.size(), '\0');
  auto n = ReadFull(p.read_fd(), got.data(), got.size());
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.value(), data.size());
  EXPECT_EQ(got, data);
}

TEST(SocketIoTest, ReadFullReassemblesPartialWrites) {
  // The writer dribbles the record in small chunks with pauses; ReadFull
  // must keep reading until the full length arrives.
  Pipe p;
  std::string data(1000, 'r');
  std::thread writer([&] {
    for (size_t pos = 0; pos < data.size(); pos += 100) {
      ASSERT_TRUE(WriteFull(p.write_fd(), data.data() + pos, 100).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::string got(data.size(), '\0');
  auto n = ReadFull(p.read_fd(), got.data(), got.size());
  writer.join();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), data.size());
  EXPECT_EQ(got, data);
}

TEST(SocketIoTest, ReadFullCleanEofBeforeFirstByteReturnsZero) {
  Pipe p;
  p.CloseWrite();
  char buf[16];
  auto n = ReadFull(p.read_fd(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST(SocketIoTest, ReadFullMidRecordEofIsTornStream) {
  Pipe p;
  ASSERT_TRUE(WriteFull(p.write_fd(), "abc", 3).ok());
  p.CloseWrite();
  char buf[16];
  auto n = ReadFull(p.read_fd(), buf, sizeof(buf));
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kInternal);
}

TEST(SocketIoTest, WriteFullIntoClosedPipeFails) {
  // MSG_NOSIGNAL / SIGPIPE-safety: the write must fail with a status, not
  // kill the process.
  signal(SIGPIPE, SIG_IGN);
  Pipe p;
  p.CloseRead();
  std::string data(64, 'x');
  EXPECT_FALSE(WriteFull(p.write_fd(), data.data(), data.size()).ok());
}

TEST(SocketIoTest, WriteFullHandlesPartialKernelWrites) {
  // A pipe has finite capacity; writing several buffers' worth forces
  // write() to go partial/blocking, exercising the resume loop.
  Pipe p;
  std::string data(1 << 20, 'w');
  std::string got(data.size(), '\0');
  std::thread reader([&] {
    auto n = ReadFull(p.read_fd(), got.data(), got.size());
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), got.size());
  });
  ASSERT_TRUE(WriteFull(p.write_fd(), data.data(), data.size()).ok());
  reader.join();
  EXPECT_EQ(got, data);
}

std::atomic<int> g_signals_seen{0};

TEST(SocketIoTest, ReadFullRetriesOnEintr) {
  // Install a no-op SIGUSR1 handler WITHOUT SA_RESTART so a blocked read()
  // actually returns EINTR, then pepper the blocked reader with signals.
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = [](int) { g_signals_seen.fetch_add(1); };
  action.sa_flags = 0;  // no SA_RESTART: read() must see EINTR
  ASSERT_EQ(sigaction(SIGUSR1, &action, nullptr), 0);

  Pipe p;
  std::string got(8, '\0');
  std::atomic<bool> done{false};
  Result<size_t> result = Status::Internal("unset");
  std::thread reader([&] {
    result = ReadFull(p.read_fd(), got.data(), got.size());
    done.store(true);
  });
  pthread_t handle = reader.native_handle();
  // Interrupt the blocked read several times before any data arrives.
  for (int i = 0; i < 20 && !done.load(); ++i) {
    pthread_kill(handle, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(WriteFull(p.write_fd(), "12345678", 8).ok());
  reader.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value(), 8u);
  EXPECT_EQ(got, "12345678");
  signal(SIGUSR1, SIG_DFL);
}

TEST(SocketIoTest, TcpListenConnectRoundTrip) {
  uint16_t port = 0;
  auto listener = ListenTcp(0, 4, &port);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ASSERT_GT(port, 0);

  auto client = ConnectTcp("127.0.0.1", port, 5.0);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // The listener is nonblocking; poll-accept until the connection lands.
  int server_fd = -1;
  for (int i = 0; i < 500 && server_fd < 0; ++i) {
    server_fd = accept(listener.value().fd(), nullptr, nullptr);
    if (server_fd < 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(server_fd, 0);
  Socket server(server_fd);

  ASSERT_TRUE(WriteFull(client.value().fd(), "ping", 4).ok());
  char buf[4];
  auto n = ReadFull(server.fd(), buf, 4);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, 4), "ping");
}

}  // namespace
}  // namespace rafiki::net
