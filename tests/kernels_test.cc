// Parity tests for the blocked GEMM kernels against a straightforward
// triple-loop reference, across rectangular, degenerate and
// non-power-of-two shapes, plus bit-stability across thread counts and the
// im2col/col2im pair.

#include "tensor/kernels.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/tensor.h"

namespace rafiki {
namespace {

enum class Variant { kNN, kTN, kNT };

/// Reference GEMM with double accumulation; `a` and `b` are stored exactly
/// as the kernels expect for each variant (TN: a is [k,m]; NT: b is [n,k]).
std::vector<float> ReferenceGemm(Variant v, const std::vector<float>& a,
                                 const std::vector<float>& b, int64_t m,
                                 int64_t k, int64_t n) {
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (int64_t l = 0; l < k; ++l) {
        float av = v == Variant::kTN ? a[static_cast<size_t>(l * m + i)]
                                     : a[static_cast<size_t>(i * k + l)];
        float bv = v == Variant::kNT ? b[static_cast<size_t>(j * k + l)]
                                     : b[static_cast<size_t>(l * n + j)];
        s += static_cast<double>(av) * bv;
      }
      c[static_cast<size_t>(i * n + j)] = static_cast<float>(s);
    }
  }
  return c;
}

std::vector<float> RandomVec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Gaussian(0.0, 1.0));
  return v;
}

void RunGemm(Variant v, const float* a, const float* b, float* c, int64_t m,
             int64_t k, int64_t n, ThreadPool* pool = nullptr) {
  switch (v) {
    case Variant::kNN: kernels::GemmNN(a, b, c, m, k, n, pool); break;
    case Variant::kTN: kernels::GemmTN(a, b, c, m, k, n, pool); break;
    case Variant::kNT: kernels::GemmNT(a, b, c, m, k, n, pool); break;
  }
}

class GemmParityTest : public ::testing::TestWithParam<Variant> {};

TEST_P(GemmParityTest, MatchesReferenceAcrossShapes) {
  struct ShapeCase {
    int64_t m, k, n;
  };
  const ShapeCase cases[] = {
      {1, 1, 1},    {1, 7, 1},   {1, 7, 5},    {5, 3, 1},
      {17, 23, 5},  {33, 29, 31}, {64, 64, 64}, {31, 127, 65},
      {2, 300, 3},  {96, 64, 96},
  };
  Rng rng(42);
  for (const ShapeCase& s : cases) {
    auto a = RandomVec(static_cast<size_t>(s.m * s.k), rng);
    auto b = RandomVec(static_cast<size_t>(s.k * s.n), rng);
    std::vector<float> c(static_cast<size_t>(s.m * s.n), 0.0f);
    RunGemm(GetParam(), a.data(), b.data(), c.data(), s.m, s.k, s.n);
    auto ref = ReferenceGemm(GetParam(), a, b, s.m, s.k, s.n);
    float max_err = 0.0f;
    for (size_t i = 0; i < c.size(); ++i)
      max_err = std::max(max_err, std::fabs(c[i] - ref[i]));
    EXPECT_LE(max_err, 1e-4f) << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST_P(GemmParityTest, AccumulatesIntoExistingC) {
  Rng rng(7);
  int64_t m = 9, k = 11, n = 13;
  auto a = RandomVec(static_cast<size_t>(m * k), rng);
  auto b = RandomVec(static_cast<size_t>(k * n), rng);
  std::vector<float> c(static_cast<size_t>(m * n), 2.5f);
  RunGemm(GetParam(), a.data(), b.data(), c.data(), m, k, n);
  auto ref = ReferenceGemm(GetParam(), a, b, m, k, n);
  for (size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], ref[i] + 2.5f, 1e-4f);
}

TEST_P(GemmParityTest, BitStableAcrossThreadCounts) {
  // Big enough to clear kGemmParallelMinFlops, so the pool really splits it.
  int64_t m = 96, k = 64, n = 96;
  ASSERT_GE(2 * m * k * n, kernels::kGemmParallelMinFlops);
  Rng rng(3);
  auto a = RandomVec(static_cast<size_t>(m * k), rng);
  auto b = RandomVec(static_cast<size_t>(k * n), rng);
  ThreadPool serial(1);
  ThreadPool wide(4);
  std::vector<float> c1(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> c4(static_cast<size_t>(m * n), 0.0f);
  RunGemm(GetParam(), a.data(), b.data(), c1.data(), m, k, n, &serial);
  RunGemm(GetParam(), a.data(), b.data(), c4.data(), m, k, n, &wide);
  EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)));
}

INSTANTIATE_TEST_SUITE_P(AllVariants, GemmParityTest,
                         ::testing::Values(Variant::kNN, Variant::kTN,
                                           Variant::kNT),
                         [](const ::testing::TestParamInfo<Variant>& info) {
                           switch (info.param) {
                             case Variant::kNN: return "NN";
                             case Variant::kTN: return "TN";
                             case Variant::kNT: return "NT";
                           }
                           return "unknown";
                         });

TEST(TensorMatMulTest, PublicApiUsesKernels) {
  Rng rng(11);
  Tensor a = Tensor::Randn({33, 29}, rng);
  Tensor b = Tensor::Randn({29, 31}, rng);
  Tensor c = MatMul(a, b);
  std::vector<float> av(a.data(), a.data() + a.numel());
  std::vector<float> bv(b.data(), b.data() + b.numel());
  auto ref = ReferenceGemm(Variant::kNN, av, bv, 33, 29, 31);
  for (int64_t i = 0; i < c.numel(); ++i)
    EXPECT_NEAR(c.at(i), ref[static_cast<size_t>(i)], 1e-4f);
}

TEST(Im2ColTest, RoundTripAdjointOfCol2Im) {
  // <Col2Im(col), x> == <col, Im2Col(x)> for random col and x: the pair is
  // a true adjoint, which is exactly what backward-pass correctness needs.
  int64_t c = 3, h = 6, w = 5, kernel = 3, pad = 1;
  int64_t oh = h + 2 * pad - kernel + 1, ow = w + 2 * pad - kernel + 1;
  int64_t col_elems = c * kernel * kernel * oh * ow;
  Rng rng(5);
  std::vector<float> x(static_cast<size_t>(c * h * w));
  std::vector<float> col_rand(static_cast<size_t>(col_elems));
  for (float& v : x) v = static_cast<float>(rng.Gaussian(0.0, 1.0));
  for (float& v : col_rand) v = static_cast<float>(rng.Gaussian(0.0, 1.0));

  std::vector<float> col_x(static_cast<size_t>(col_elems), 0.0f);
  kernels::Im2Col(x.data(), c, h, w, kernel, pad, col_x.data());
  std::vector<float> img(static_cast<size_t>(c * h * w), 0.0f);
  kernels::Col2Im(col_rand.data(), c, h, w, kernel, pad, img.data());

  double lhs = 0.0, rhs = 0.0;
  for (size_t i = 0; i < img.size(); ++i)
    lhs += static_cast<double>(img[i]) * x[i];
  for (size_t i = 0; i < col_x.size(); ++i)
    rhs += static_cast<double>(col_rand[i]) * col_x[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2ColTest, UnpaddedColumnsMatchDirectIndexing) {
  int64_t c = 2, h = 4, w = 4, kernel = 2, pad = 0;
  int64_t oh = 3, ow = 3;
  std::vector<float> x(static_cast<size_t>(c * h * w));
  for (size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  std::vector<float> col(static_cast<size_t>(c * kernel * kernel * oh * ow));
  kernels::Im2Col(x.data(), c, h, w, kernel, pad, col.data());
  for (int64_t ci = 0; ci < c; ++ci) {
    for (int64_t ky = 0; ky < kernel; ++ky) {
      for (int64_t kx = 0; kx < kernel; ++kx) {
        for (int64_t y = 0; y < oh; ++y) {
          for (int64_t xx = 0; xx < ow; ++xx) {
            int64_t row = (ci * kernel + ky) * kernel + kx;
            float got = col[static_cast<size_t>(row * oh * ow + y * ow + xx)];
            float want =
                x[static_cast<size_t>((ci * h + y + ky) * w + xx + kx)];
            EXPECT_EQ(got, want);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace rafiki
