#include <thread>

#include "gtest/gtest.h"
#include "ps/parameter_server.h"
#include "storage/blob_store.h"

namespace rafiki::ps {
namespace {

Tensor Arange(Shape shape) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(i);
  }
  return t;
}

TEST(ParameterServerTest, PutGetRoundTrip) {
  ParameterServer ps;
  ParamMeta meta;
  meta.accuracy = 0.8;
  ASSERT_TRUE(ps.Put("model1", "fc0/weight", Arange({2, 3}), meta).ok());
  auto got = ps.Get("model1", "fc0/weight");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->shape(), (Shape{2, 3}));
  EXPECT_EQ(got->at(5), 5.0f);
}

TEST(ParameterServerTest, MissingIsNotFound) {
  ParameterServer ps;
  EXPECT_TRUE(ps.Get("m", "p").status().IsNotFound());
  EXPECT_TRUE(ps.GetModel("m").status().IsNotFound());
  EXPECT_TRUE(ps.BestModel("m").status().IsNotFound());
}

TEST(ParameterServerTest, EmptyKeysRejected) {
  ParameterServer ps;
  EXPECT_TRUE(ps.Put("", "p", Tensor({1}), ParamMeta{}).IsInvalidArgument());
  EXPECT_TRUE(ps.Put("m", "", Tensor({1}), ParamMeta{}).IsInvalidArgument());
}

TEST(ParameterServerTest, ShapeMatchedFetchPrefersBestAccuracy) {
  // §4.2.2: a new ConvNet's 3rd conv layer initializes from any stored
  // tensor with the same name suffix + shape, best-accuracy donor first.
  ParameterServer ps;
  ParamMeta low;
  low.accuracy = 0.5;
  low.visibility = Visibility::kPublic;
  ParamMeta high;
  high.accuracy = 0.9;
  high.visibility = Visibility::kPublic;
  ASSERT_TRUE(ps.Put("trialA", "conv3/weight",
                     Tensor::Full({8, 4, 3, 3}, 1.0f), low)
                  .ok());
  ASSERT_TRUE(ps.Put("trialB", "conv3/weight",
                     Tensor::Full({8, 4, 3, 3}, 2.0f), high)
                  .ok());
  // A 5x5 kernel must not match.
  ASSERT_TRUE(ps.Put("trialC", "conv3/weight",
                     Tensor::Full({8, 4, 5, 5}, 3.0f), high)
                  .ok());
  auto got = ps.FetchShapeMatched("conv3/weight", {8, 4, 3, 3}, "anyone");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->at(0), 2.0f);

  auto missing = ps.FetchShapeMatched("conv9/weight", {8, 4, 3, 3}, "x");
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST(ParameterServerTest, PrivateParamsOnlyVisibleToOwner) {
  ParameterServer ps;
  ParamMeta priv;
  priv.accuracy = 0.9;
  priv.visibility = Visibility::kPrivate;
  priv.owner = "alice";
  ASSERT_TRUE(ps.Put("m", "fc/w", Arange({2, 2}), priv).ok());
  EXPECT_TRUE(
      ps.FetchShapeMatched("fc/w", {2, 2}, "bob").status().IsNotFound());
  EXPECT_TRUE(ps.FetchShapeMatched("fc/w", {2, 2}, "alice").ok());
}

TEST(ParameterServerTest, ModelCheckpointRoundTrip) {
  ParameterServer ps;
  ModelCheckpoint ckpt;
  ckpt.params.emplace_back("fc0/weight", Arange({2, 2}));
  ckpt.params.emplace_back("fc0/bias", Arange({1, 2}));
  ckpt.meta.accuracy = 0.77;
  ASSERT_TRUE(ps.PutModel("study/x/best", ckpt).ok());
  auto got = ps.GetModel("study/x/best");
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->params.size(), 2u);
  EXPECT_EQ(got->params[0].first, "fc0/weight");
  EXPECT_DOUBLE_EQ(got->meta.accuracy, 0.77);
}

TEST(ParameterServerTest, BestModelPicksHighestAccuracy) {
  ParameterServer ps;
  for (int i = 0; i < 3; ++i) {
    ModelCheckpoint ckpt;
    ckpt.params.emplace_back("w", Tensor::Full({1}, static_cast<float>(i)));
    ckpt.meta.accuracy = 0.5 + 0.1 * i;
    ASSERT_TRUE(
        ps.PutModel("study/s/trial" + std::to_string(i), ckpt).ok());
  }
  auto best = ps.BestModel("study/s/");
  ASSERT_TRUE(best.ok());
  EXPECT_DOUBLE_EQ(best->meta.accuracy, 0.7);
  EXPECT_EQ(best->params[0].second.at(0), 2.0f);
}

TEST(ParameterServerTest, SpillColdAndPromoteBack) {
  storage::BlobStore cold;
  ParameterServer ps(&cold);
  ParamMeta meta;
  ASSERT_TRUE(ps.Put("m", "hot", Arange({4}), meta).ok());
  ASSERT_TRUE(ps.Put("m", "cold", Arange({4}), meta).ok());
  // Touch "hot" a few times so it stays resident.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ps.Get("m", "hot").ok());
  size_t spilled = ps.SpillCold(/*min_accesses=*/3);
  EXPECT_EQ(spilled, 1u);
  EXPECT_EQ(ps.num_hot_entries(), 1u);
  EXPECT_EQ(ps.num_entries(), 2u);
  // Reading the cold entry promotes it back, transparently.
  auto got = ps.Get("m", "cold");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->at(3), 3.0f);
  EXPECT_EQ(ps.num_hot_entries(), 2u);
}

TEST(ParameterServerTest, SpillWithoutStoreIsNoop) {
  ParameterServer ps;
  ASSERT_TRUE(ps.Put("m", "p", Arange({2}), ParamMeta{}).ok());
  EXPECT_EQ(ps.SpillCold(100), 0u);
}

TEST(ParameterServerTest, VersionIncrementsOnOverwrite) {
  ParameterServer ps;
  ParamMeta meta;
  ASSERT_TRUE(ps.Put("m", "p", Arange({2}), meta).ok());
  ASSERT_TRUE(ps.Put("m", "p", Arange({2}), meta).ok());
  // Version is internal; verified indirectly through overwrite semantics.
  auto got = ps.Get("m", "p");
  ASSERT_TRUE(got.ok());
}

TEST(ParameterServerTest, ConcurrentPutGetIsSafe) {
  ParameterServer ps;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ps, t] {
      ParamMeta meta;
      meta.accuracy = 0.1 * t;
      for (int i = 0; i < 50; ++i) {
        std::string scope = "w" + std::to_string(t);
        ASSERT_TRUE(
            ps.Put(scope, "p" + std::to_string(i), Arange({8}), meta).ok());
        auto got = ps.Get(scope, "p" + std::to_string(i));
        ASSERT_TRUE(got.ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ps.num_entries(), 200u);
}

TEST(ParameterServerTest, SpillRacingPutKeepsFreshValue) {
  // Serialization and blob I/O run outside the server mutex, so a Put can
  // land between a spill's snapshot and its demotion pass; the revision
  // check must then keep the fresh value hot instead of demoting the entry
  // to the stale blob.
  storage::BlobStore cold;
  ParameterServer ps(&cold);
  ParamMeta meta;
  Tensor initial({64});
  initial.Fill(0.0f);  // constant per version, so torn reads are detectable
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(ps.Put("m", "p" + std::to_string(i), initial, meta).ok());
  }
  std::thread spiller([&ps] {
    for (int round = 0; round < 50; ++round) ps.SpillCold(/*min_accesses=*/1);
  });
  std::thread writer([&ps, &meta] {
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 32; ++i) {
        Tensor fresh({64});
        fresh.Fill(static_cast<float>(round + 1));
        ASSERT_TRUE(ps.Put("m", "p" + std::to_string(i), fresh, meta).ok());
      }
    }
  });
  std::thread reader([&ps] {
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 32; ++i) {
        auto got = ps.Get("m", "p" + std::to_string(i));
        ASSERT_TRUE(got.ok());
        // Every element of a value is written atomically under the lock,
        // so a read must never observe a torn/stale-mixed tensor.
        float first = got->at(0);
        for (int64_t j = 1; j < got->numel(); ++j) {
          ASSERT_EQ(got->at(j), first);
        }
      }
    }
  });
  spiller.join();
  writer.join();
  reader.join();
  // After the dust settles the latest Put must win everywhere.
  for (int i = 0; i < 32; ++i) {
    auto got = ps.Get("m", "p" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->at(0), 50.0f);
  }
}

TEST(ParameterServerTest, GetModelPromotesColdCheckpointUnderTraffic) {
  storage::BlobStore cold;
  ParameterServer ps(&cold);
  ModelCheckpoint ckpt;
  for (int i = 0; i < 8; ++i) {
    ckpt.params.emplace_back("w" + std::to_string(i), Arange({16}));
  }
  ckpt.meta.accuracy = 0.5;
  ASSERT_TRUE(ps.PutModel("trial", ckpt).ok());
  ASSERT_EQ(ps.SpillCold(/*min_accesses=*/1), 8u);
  std::thread churn([&ps] {
    ParamMeta meta;
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(ps.Put("other", "x", Arange({4}), meta).ok());
      ASSERT_TRUE(ps.Get("other", "x").ok());
    }
  });
  auto got = ps.GetModel("trial");
  churn.join();
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->params.size(), 8u);
  for (auto& [name, value] : got->params) {
    EXPECT_EQ(value.numel(), 16);
    EXPECT_EQ(value.at(3), 3.0f);  // round-tripped through the blob store
  }
  // All eight entries were promoted back to hot by the read.
  EXPECT_EQ(ps.num_hot_entries(), ps.num_entries());
}

TEST(ParameterServerTest, ListScopesReturnsCheckpoints) {
  ParameterServer ps;
  ModelCheckpoint ckpt;
  ckpt.params.emplace_back("w", Tensor({1}));
  ASSERT_TRUE(ps.PutModel("a", ckpt).ok());
  ASSERT_TRUE(ps.PutModel("b", ckpt).ok());
  EXPECT_EQ(ps.ListScopes(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace rafiki::ps
