#include <cmath>
#include <set>

#include "gtest/gtest.h"
#include "tuning/bayes_opt.h"
#include "tuning/gaussian_process.h"
#include "tuning/trial_advisor.h"

namespace rafiki::tuning {
namespace {

HyperSpace Make2dSpace() {
  HyperSpace space;
  EXPECT_TRUE(space.AddRangeKnob("x", KnobDtype::kFloat, 0.0, 1.0).ok());
  EXPECT_TRUE(space.AddRangeKnob("y", KnobDtype::kFloat, 0.0, 1.0).ok());
  return space;
}

/// Smooth test objective with optimum at (0.7, 0.3).
double Objective(const Trial& t) {
  double dx = t.GetDouble("x") - 0.7;
  double dy = t.GetDouble("y") - 0.3;
  return 1.0 - (dx * dx + dy * dy);
}

TEST(RandomSearchTest, IssuesExactlyMaxTrials) {
  HyperSpace space = Make2dSpace();
  RandomSearchAdvisor advisor(&space, 25, 1);
  int issued = 0;
  while (advisor.Next("w").has_value()) ++issued;
  EXPECT_EQ(issued, 25);
}

TEST(RandomSearchTest, TrialIdsUniqueAndValid) {
  HyperSpace space = Make2dSpace();
  RandomSearchAdvisor advisor(&space, 50, 2);
  std::set<int64_t> ids;
  while (auto t = advisor.Next("w")) {
    EXPECT_TRUE(space.Validate(*t).ok());
    EXPECT_TRUE(ids.insert(t->id()).second) << "duplicate id";
  }
  EXPECT_EQ(ids.size(), 50u);
}

TEST(AdvisorBaseTest, BestTrialTracksMaximum) {
  HyperSpace space = Make2dSpace();
  RandomSearchAdvisor advisor(&space, 10, 3);
  EXPECT_FALSE(advisor.BestTrial().has_value());
  Trial t1(0), t2(1);
  advisor.Collect("w1", 0.5, t1);
  advisor.Collect("w2", 0.8, t2);
  advisor.Collect("w1", 0.3, t1);  // later report, lower
  ASSERT_TRUE(advisor.BestTrial().has_value());
  EXPECT_DOUBLE_EQ(advisor.BestTrial()->performance, 0.8);
  EXPECT_TRUE(advisor.IsBest("w2"));
  EXPECT_FALSE(advisor.IsBest("w1"));
  // Intermediate reports overwrite the same trial's record.
  EXPECT_EQ(advisor.Results().size(), 2u);
}

TEST(GridSearchTest, EnumeratesFullGrid) {
  HyperSpace space;
  ASSERT_TRUE(space.AddRangeKnob("x", KnobDtype::kFloat, 0.0, 1.0).ok());
  ASSERT_TRUE(space.AddCategoricalKnob("k", {"a", "b", "c"}).ok());
  GridSearchAdvisor advisor(&space, 4);
  EXPECT_EQ(advisor.grid_size(), 12);
  std::set<std::string> seen;
  while (auto t = advisor.Next("w")) {
    seen.insert(t->GetString("k") + "/" +
                std::to_string(t->GetDouble("x")));
  }
  EXPECT_EQ(seen.size(), 12u) << "grid points must be distinct";
}

TEST(GaussianProcessTest, InterpolatesTrainingPoints) {
  GpOptions options;
  options.noise_variance = 1e-6;
  GaussianProcess gp(options);
  std::vector<std::vector<double>> x{{0.1}, {0.5}, {0.9}};
  std::vector<double> y{1.0, 2.0, 0.5};
  ASSERT_TRUE(gp.Fit(x, y).ok());
  for (size_t i = 0; i < x.size(); ++i) {
    double mean = 0.0, var = 0.0;
    gp.Predict(x[i], &mean, &var);
    EXPECT_NEAR(mean, y[i], 1e-2);
    EXPECT_LT(var, 0.05);
  }
}

TEST(GaussianProcessTest, VarianceGrowsAwayFromData) {
  GaussianProcess gp(GpOptions{});
  std::vector<std::vector<double>> x{{0.5}};
  std::vector<double> y{1.0};
  ASSERT_TRUE(gp.Fit(x, y).ok());
  double mean_near = 0.0, var_near = 0.0;
  gp.Predict({0.5}, &mean_near, &var_near);
  double mean_far = 0.0, var_far = 0.0;
  gp.Predict({5.0}, &mean_far, &var_far);
  EXPECT_GT(var_far, var_near);
}

TEST(GaussianProcessTest, RejectsBadInput) {
  GaussianProcess gp(GpOptions{});
  EXPECT_FALSE(gp.Fit({}, {}).ok());
  EXPECT_FALSE(gp.Fit({{0.1}}, {1.0, 2.0}).ok());
}

TEST(GaussianProcessTest, DuplicatePointsStillFactorize) {
  // Noise on the diagonal keeps the kernel positive definite even with
  // duplicate inputs.
  GaussianProcess gp(GpOptions{});
  std::vector<std::vector<double>> x{{0.5}, {0.5}, {0.5}};
  std::vector<double> y{1.0, 1.1, 0.9};
  EXPECT_TRUE(gp.Fit(x, y).ok());
}

TEST(GaussianProcessTest, ExpectedImprovementFavorsPromisingRegion) {
  GpOptions options;
  options.length_scale = 0.3;
  GaussianProcess gp(options);
  std::vector<std::vector<double>> x{{0.0}, {0.4}, {1.0}};
  std::vector<double> y{0.1, 0.9, 0.2};
  ASSERT_TRUE(gp.Fit(x, y).ok());
  double near_peak = gp.ExpectedImprovement({0.45}, 0.9, 0.0);
  double near_floor = gp.ExpectedImprovement({0.02}, 0.9, 0.0);
  EXPECT_GT(near_peak, near_floor);
}

TEST(NormalHelpersTest, CdfPdfSanity) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-9);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalPdf(0.0), 0.3989, 1e-4);
}

TEST(BayesOptTest, BeatsRandomSearchOnSmoothObjective) {
  // The Figure 9-vs-8 claim in miniature: averaged over seeds, BO finds a
  // better optimum than random search at an equal trial budget.
  const int kBudget = 30;
  double random_sum = 0.0, bo_sum = 0.0, bo_min = 1e9;
  for (uint64_t seed = 4; seed < 9; ++seed) {
    double random_best = -1e9, bo_best = -1e9;
    {
      HyperSpace space = Make2dSpace();
      RandomSearchAdvisor advisor(&space, kBudget, seed);
      while (auto t = advisor.Next("w")) {
        double y = Objective(*t);
        advisor.Collect("w", y, *t);
        random_best = std::max(random_best, y);
      }
    }
    {
      HyperSpace space = Make2dSpace();
      BayesOptOptions options;
      options.max_trials = kBudget;
      options.num_init_random = 6;
      options.candidates_per_step = 256;
      options.seed = seed;
      BayesOptAdvisor advisor(&space, options);
      while (auto t = advisor.Next("w")) {
        double y = Objective(*t);
        advisor.Collect("w", y, *t);
        bo_best = std::max(bo_best, y);
      }
    }
    random_sum += random_best;
    bo_sum += bo_best;
    bo_min = std::min(bo_min, bo_best);
  }
  EXPECT_GE(bo_sum + 1e-6, random_sum)
      << "BO should beat random search on average";
  EXPECT_GT(bo_min, 0.98) << "BO should get very close to the optimum";
}

TEST(BayesOptTest, RespectsMaxTrials) {
  HyperSpace space = Make2dSpace();
  BayesOptOptions options;
  options.max_trials = 12;
  options.num_init_random = 4;
  options.candidates_per_step = 32;
  BayesOptAdvisor advisor(&space, options);
  int issued = 0;
  while (auto t = advisor.Next("w")) {
    advisor.Collect("w", Objective(*t), *t);
    ++issued;
  }
  EXPECT_EQ(issued, 12);
}

TEST(BayesOptTest, ProposalsStayInDomain) {
  HyperSpace space;
  ASSERT_TRUE(space.AddRangeKnob("lr", KnobDtype::kFloat, 1e-4, 1.0,
                                 /*log_scale=*/true)
                  .ok());
  BayesOptOptions options;
  options.max_trials = 20;
  options.num_init_random = 5;
  options.candidates_per_step = 64;
  BayesOptAdvisor advisor(&space, options);
  while (auto t = advisor.Next("w")) {
    EXPECT_TRUE(space.Validate(*t).ok()) << t->DebugString();
    advisor.Collect("w", t->GetDouble("lr"), *t);
  }
}

}  // namespace
}  // namespace rafiki::tuning
