#include "net/http.h"

#include <string>

#include "gtest/gtest.h"

namespace rafiki::net {
namespace {

/// Feeds the whole string at once; returns consumed bytes.
size_t FeedAll(HttpParser& p, const std::string& s) {
  return p.Feed(s.data(), s.size());
}

TEST(PercentDecodeTest, Basics) {
  EXPECT_EQ(PercentDecode("abc"), "abc");
  EXPECT_EQ(PercentDecode("a%20b"), "a b");
  EXPECT_EQ(PercentDecode("%2Fpath%2f"), "/path/");
  EXPECT_EQ(PercentDecode("a+b"), "a+b");
  EXPECT_EQ(PercentDecode("a+b", /*plus_as_space=*/true), "a b");
  // Malformed escapes survive literally instead of corrupting the string.
  EXPECT_EQ(PercentDecode("%"), "%");
  EXPECT_EQ(PercentDecode("%2"), "%2");
  EXPECT_EQ(PercentDecode("%zz"), "%zz");
  EXPECT_EQ(PercentDecode("100%"), "100%");
}

TEST(HttpParserTest, SimpleGet) {
  HttpParser p;
  std::string wire = "GET /jobs/j0?x=1 HTTP/1.1\r\nHost: a\r\n\r\n";
  EXPECT_EQ(FeedAll(p, wire), wire.size());
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().target, "/jobs/j0?x=1");
  EXPECT_EQ(p.request().path, "/jobs/j0");
  EXPECT_EQ(p.request().query, "x=1");
  EXPECT_TRUE(p.request().keep_alive);
  ASSERT_NE(p.request().FindHeader("host"), nullptr);
  EXPECT_EQ(*p.request().FindHeader("host"), "a");
}

TEST(HttpParserTest, ByteAtATime) {
  // Torn packets: every byte arrives alone; the result must be identical.
  HttpParser p;
  std::string wire =
      "POST /query?job=i0 HTTP/1.1\r\nContent-Length: 5\r\n"
      "X-Extra:  padded value \r\n\r\n1,2,3";
  for (char c : wire) {
    ASSERT_FALSE(p.failed()) << p.error();
    EXPECT_EQ(p.Feed(&c, 1), 1u);
  }
  ASSERT_TRUE(p.done()) << p.error();
  EXPECT_EQ(p.request().method, "POST");
  EXPECT_EQ(p.request().body, "1,2,3");
  ASSERT_NE(p.request().FindHeader("x-extra"), nullptr);
  EXPECT_EQ(*p.request().FindHeader("x-extra"), "padded value");
}

TEST(HttpParserTest, StopsAtOneRequestForPipelining) {
  HttpParser p;
  std::string two =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  size_t consumed = FeedAll(p, two);
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().path, "/a");
  EXPECT_EQ(consumed, two.size() / 2);  // second request untouched
  p.Reset();
  EXPECT_EQ(p.Feed(two.data() + consumed, two.size() - consumed),
            two.size() - consumed);
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().path, "/b");
}

TEST(HttpParserTest, BareLfAndLeadingBlankLinesTolerated) {
  HttpParser p;
  std::string wire = "\r\n\nGET /a HTTP/1.1\nHost: b\n\n";
  EXPECT_EQ(FeedAll(p, wire), wire.size());
  ASSERT_TRUE(p.done()) << p.error();
  EXPECT_EQ(p.request().path, "/a");
}

TEST(HttpParserTest, KeepAliveDefaults) {
  {
    HttpParser p;
    std::string s = "GET / HTTP/1.1\r\n\r\n";
    FeedAll(p, s);
    ASSERT_TRUE(p.done());
    EXPECT_TRUE(p.request().keep_alive);
  }
  {
    HttpParser p;
    std::string s = "GET / HTTP/1.0\r\n\r\n";
    FeedAll(p, s);
    ASSERT_TRUE(p.done());
    EXPECT_FALSE(p.request().keep_alive);
  }
  {
    HttpParser p;
    std::string s = "GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
    FeedAll(p, s);
    ASSERT_TRUE(p.done());
    EXPECT_FALSE(p.request().keep_alive);
  }
  {
    HttpParser p;
    std::string s = "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
    FeedAll(p, s);
    ASSERT_TRUE(p.done());
    EXPECT_TRUE(p.request().keep_alive);
  }
}

TEST(HttpParserTest, ContentLengthBody) {
  HttpParser p;
  std::string s = "POST /q HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
  EXPECT_EQ(FeedAll(p, s), s.size());
  ASSERT_TRUE(p.done());
  EXPECT_TRUE(p.request().body.empty());

  p.Reset();
  std::string body(1000, 'x');
  std::string s2 = "POST /q HTTP/1.1\r\nContent-Length: 1000\r\n\r\n" + body;
  EXPECT_EQ(FeedAll(p, s2), s2.size());
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().body, body);
}

TEST(HttpParserTest, ErrorStatuses) {
  struct Case {
    const char* wire;
    int status;
  } cases[] = {
      {"BAD\r\n\r\n", 400},                                   // no target
      {"GET nopath HTTP/1.1\r\n\r\n", 400},                   // no leading /
      {"GET / HTTP/2.0\r\n\r\n", 505},                        // bad version
      {"GET / FTP/1.1\r\n\r\n", 400},                         // not HTTP
      {"GET / HTTP/1.1\r\nNo colon\r\n\r\n", 400},            // bad header
      {"GET / HTTP/1.1\r\n: novalue\r\n\r\n", 400},           // empty name
      {"POST / HTTP/1.1\r\nContent-Length: -3\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
  };
  for (const Case& c : cases) {
    HttpParser p;
    std::string wire = c.wire;
    FeedAll(p, wire);
    EXPECT_TRUE(p.failed()) << wire;
    EXPECT_EQ(p.error_status(), c.status) << wire << " -> " << p.error();
  }
}

TEST(HttpParserTest, LimitsMapToStatuses) {
  HttpParserLimits limits;
  limits.max_request_line = 64;
  limits.max_header_bytes = 128;
  limits.max_body_bytes = 16;
  {
    HttpParser p(limits);
    std::string s = "GET /" + std::string(100, 'a') + " HTTP/1.1\r\n\r\n";
    FeedAll(p, s);
    ASSERT_TRUE(p.failed());
    EXPECT_EQ(p.error_status(), 414);
  }
  {
    HttpParser p(limits);
    std::string s =
        "GET / HTTP/1.1\r\nX-Big: " + std::string(200, 'b') + "\r\n\r\n";
    FeedAll(p, s);
    ASSERT_TRUE(p.failed());
    EXPECT_EQ(p.error_status(), 431);
  }
  {
    HttpParser p(limits);
    std::string s = "POST / HTTP/1.1\r\nContent-Length: 64\r\n\r\n";
    FeedAll(p, s);
    ASSERT_TRUE(p.failed());
    EXPECT_EQ(p.error_status(), 413);
  }
}

TEST(HttpParserTest, FuzzedGarbageNeverCrashes) {
  // Deterministic pseudo-random garbage; the parser must end in done() or
  // failed(), never crash or over-consume.
  uint64_t state = 88172645463325252ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    size_t len = next() % 512;
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(next() % 256));
    }
    HttpParser p;
    size_t consumed = p.Feed(garbage.data(), garbage.size());
    EXPECT_LE(consumed, garbage.size());
    if (p.failed()) {
      EXPECT_GE(p.error_status(), 400);
      EXPECT_LT(p.error_status(), 600);
      // An errored parser consumes nothing further.
      EXPECT_EQ(p.Feed(garbage.data(), garbage.size()), 0u);
    }
  }
}

TEST(HttpResponseParserTest, ContentLengthAndUntilClose) {
  {
    HttpResponseParser p;
    std::string wire =
        "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
    EXPECT_EQ(p.Feed(wire.data(), wire.size()), wire.size());
    ASSERT_TRUE(p.done());
    EXPECT_EQ(p.status(), 200);
    EXPECT_EQ(p.body(), "ok");
  }
  {
    HttpResponseParser p;
    std::string wire =
        "HTTP/1.0 404 Not Found\r\nConnection: close\r\n\r\npartial";
    p.Feed(wire.data(), wire.size());
    EXPECT_FALSE(p.done());  // no length: body runs to EOF
    p.FinishEof();
    ASSERT_TRUE(p.done());
    EXPECT_EQ(p.status(), 404);
    EXPECT_EQ(p.body(), "partial");
    EXPECT_FALSE(p.keep_alive());
  }
}

TEST(HttpResponseParserTest, ChunkedBody) {
  HttpResponseParser p;
  std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n7\r\n, world\r\n0\r\n\r\n";
  EXPECT_EQ(p.Feed(wire.data(), wire.size()), wire.size());
  ASSERT_TRUE(p.done()) << p.error();
  EXPECT_EQ(p.status(), 200);
  EXPECT_EQ(p.body(), "hello, world");
  EXPECT_TRUE(p.keep_alive());
}

TEST(HttpResponseParserTest, ChunkedByteAtATime) {
  HttpResponseParser p;
  std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "a\r\n0123456789\r\n1\r\n!\r\n0\r\n\r\n";
  for (char c : wire) {
    ASSERT_FALSE(p.failed()) << p.error();
    EXPECT_EQ(p.Feed(&c, 1), 1u);
  }
  ASSERT_TRUE(p.done()) << p.error();
  EXPECT_EQ(p.body(), "0123456789!");
}

TEST(HttpResponseParserTest, ChunkedExtensionsAndTrailersIgnored) {
  HttpResponseParser p;
  std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4;name=value\r\ndata\r\n0\r\nX-Trailer: ignored\r\n\r\n";
  EXPECT_EQ(p.Feed(wire.data(), wire.size()), wire.size());
  ASSERT_TRUE(p.done()) << p.error();
  EXPECT_EQ(p.body(), "data");
}

TEST(HttpResponseParserTest, ChunkedOverridesContentLength) {
  // RFC 7230 §3.3.3: Transfer-Encoding wins when both are present.
  HttpResponseParser p;
  std::string wire =
      "HTTP/1.1 200 OK\r\nContent-Length: 999\r\n"
      "Transfer-Encoding: chunked\r\n\r\n"
      "2\r\nok\r\n0\r\n\r\n";
  EXPECT_EQ(p.Feed(wire.data(), wire.size()), wire.size());
  ASSERT_TRUE(p.done()) << p.error();
  EXPECT_EQ(p.body(), "ok");
}

TEST(HttpResponseParserTest, ChunkedMalformedSizeFails) {
  for (const char* frame : {"zz\r\n", "\r\n", "5 junk\r\n"}) {
    HttpResponseParser p;
    std::string wire = std::string(
        "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n") + frame;
    p.Feed(wire.data(), wire.size());
    EXPECT_TRUE(p.failed()) << "frame: " << frame;
  }
}

TEST(HttpResponseParserTest, ChunkedMissingCrlfAfterDataFails) {
  HttpResponseParser p;
  std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\ndataJUNK\r\n";
  p.Feed(wire.data(), wire.size());
  EXPECT_TRUE(p.failed());
}

TEST(HttpResponseParserTest, ChunkedBodyLimitEnforced) {
  HttpResponseParserLimits limits;
  limits.max_body_bytes = 8;
  HttpResponseParser p(limits);
  std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "6\r\nabcdef\r\n6\r\nghijkl\r\n0\r\n\r\n";
  p.Feed(wire.data(), wire.size());
  EXPECT_TRUE(p.failed());
  EXPECT_NE(p.error().find("too large"), std::string::npos);
}

TEST(HttpResponseParserTest, ChunkedHugeSizeLineFails) {
  HttpResponseParserLimits limits;
  limits.max_chunk_line = 16;
  HttpResponseParser p(limits);
  std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4;" + std::string(64, 'x');  // size line never ends
  p.Feed(wire.data(), wire.size());
  EXPECT_TRUE(p.failed());
}

TEST(HttpResponseParserTest, ChunkedEofMidBodyIsError) {
  HttpResponseParser p;
  std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhel";
  p.Feed(wire.data(), wire.size());
  p.FinishEof();
  EXPECT_TRUE(p.failed());
}

TEST(HttpResponseParserTest, ChunkedResetReusesParser) {
  HttpResponseParser p;
  std::string chunked =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n";
  EXPECT_EQ(p.Feed(chunked.data(), chunked.size()), chunked.size());
  ASSERT_TRUE(p.done());
  p.Reset();
  // The next response on the connection is plain Content-Length framing;
  // no chunked state may leak across Reset().
  std::string plain = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
  EXPECT_EQ(p.Feed(plain.data(), plain.size()), plain.size());
  ASSERT_TRUE(p.done()) << p.error();
  EXPECT_EQ(p.body(), "ok");
}

TEST(SerializeTest, ChunkedEncoderRoundTripsThroughDecoder) {
  HttpResponse resp;
  resp.status = 200;
  resp.content_type = "application/json";
  std::string wire;
  SerializeChunkedResponseHeadersTo(resp, /*keep_alive=*/true, &wire);
  EXPECT_NE(wire.find("Transfer-Encoding: chunked\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("Content-Length"), std::string::npos);
  AppendChunk("first ", &wire);
  AppendChunk("", &wire);  // no-op, must not terminate the stream
  AppendChunk(std::string(300, 'z'), &wire);  // multi-hex-digit size
  AppendLastChunk(&wire);

  HttpResponseParser p;
  EXPECT_EQ(p.Feed(wire.data(), wire.size()), wire.size());
  ASSERT_TRUE(p.done()) << p.error();
  EXPECT_EQ(p.body(), "first " + std::string(300, 'z'));
  EXPECT_TRUE(p.keep_alive());
}

TEST(HttpParserTest, RequestChunkedStillRejectedWith501) {
  // The server-side parser intentionally keeps rejecting chunked request
  // bodies; only responses stream.
  HttpParser p;
  std::string wire =
      "POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  FeedAll(p, wire);
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 501);
}

TEST(SerializeTest, ResponseAndRequestRoundTrip) {
  HttpResponse resp;
  resp.status = 200;
  resp.body = "hello";
  std::string wire = SerializeResponse(resp, /*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 9), "\r\n\r\nhello");

  std::string req = SerializeRequest("POST", "/q?x=1", "h", "body",
                                     /*keep_alive=*/false);
  HttpParser p;
  EXPECT_EQ(p.Feed(req.data(), req.size()), req.size());
  ASSERT_TRUE(p.done()) << p.error();
  EXPECT_EQ(p.request().method, "POST");
  EXPECT_EQ(p.request().path, "/q");
  EXPECT_EQ(p.request().body, "body");
  EXPECT_FALSE(p.request().keep_alive);
}

}  // namespace
}  // namespace rafiki::net
