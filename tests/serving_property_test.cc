// Parameterized property sweeps over the serving stack: conservation and
// bound invariants that must hold for every policy at every load level.

#include <cmath>

#include "gtest/gtest.h"
#include "model/profile.h"
#include "serving/greedy_batch.h"
#include "serving/rl_scheduler.h"
#include "serving/simulator.h"
#include "serving/sine_arrival.h"

namespace rafiki::serving {
namespace {

std::vector<model::ModelProfile> Triple() {
  return {model::FindProfile("inception_v3").value(),
          model::FindProfile("inception_v4").value(),
          model::FindProfile("inception_resnet_v2").value()};
}

/// (policy kind, load as a fraction of the 3-model max throughput).
using Config = std::tuple<int, double>;

class ServingSweepTest : public ::testing::TestWithParam<Config> {};

TEST_P(ServingSweepTest, ConservationAndBounds) {
  auto [policy_kind, load] = GetParam();
  auto models = Triple();
  model::EnsembleAccuracyTable table(models, model::PredictionSimOptions{},
                                     4000);
  ServingSimOptions options;
  options.duration_seconds = 200.0;
  options.queue_capacity = 3000;
  ServingSimulator sim(models, &table, options);
  double rate = load * model::MaxThroughput(models, 64);
  SineArrivalProcess arrivals(rate, 280.0, 97);

  std::unique_ptr<SchedulerPolicy> policy;
  switch (policy_kind) {
    case 0:
      policy = std::make_unique<SyncEnsembleGreedyPolicy>();
      break;
    case 1:
      policy = std::make_unique<AsyncNoEnsemblePolicy>();
      break;
    default: {
      RlSchedulerOptions rl_options;
      policy = std::make_unique<RlSchedulerPolicy>(3, options.batch_sizes,
                                                   &table, rl_options);
    }
  }
  ServingMetrics m = sim.Run(*policy, arrivals);

  // Exact conservation: every arrived request is processed, dropped, or
  // still queued at the horizon (the residual, counted as overdue).
  EXPECT_EQ(m.total_arrived,
            m.total_processed + m.total_dropped + m.total_residual);
  EXPECT_GE(m.total_processed, 0);
  EXPECT_GE(m.total_residual, 0);
  // Overdue is a subset of processed plus the never-served residual.
  EXPECT_LE(m.total_overdue, m.total_processed + m.total_residual);
  // Accuracy of any served mix is within the single-model/ensemble hull.
  if (m.total_processed > 0) {
    double lo = 1.0, hi = 0.0;
    for (uint32_t mask = 1; mask < 8; ++mask) {
      lo = std::min(lo, table.Accuracy(mask));
      hi = std::max(hi, table.Accuracy(mask));
    }
    EXPECT_GE(m.mean_accuracy, lo - 1e-9);
    EXPECT_LE(m.mean_accuracy, hi + 1e-9);
    EXPECT_GE(m.mean_latency, 0.0);
  }
  // Window series agree with the run totals exactly: the overflow bucket
  // (batches completing past the horizon) is folded into the last window
  // and the raw counts back the rates.
  int64_t window_arrived = 0;
  int64_t window_processed = 0;
  int64_t window_overdue = 0;
  for (const WindowSample& w : m.windows) {
    EXPECT_GE(w.arrived, 0);
    EXPECT_GE(w.processed, 0);
    EXPECT_GE(w.overdue, 0);
    EXPECT_DOUBLE_EQ(w.processed_per_sec,
                     static_cast<double>(w.processed) /
                         options.metrics_window);
    window_arrived += w.arrived;
    window_processed += w.processed;
    window_overdue += w.overdue;
  }
  EXPECT_EQ(window_arrived, m.total_arrived);
  EXPECT_EQ(window_processed, m.total_processed)
      << "window accounting lost a batch";
  // Window overdue includes queue drops; run totals keep them separate.
  EXPECT_EQ(window_overdue, m.total_overdue + m.total_dropped);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesTimesLoads, ServingSweepTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0.2, 0.7, 1.2)));

class SineSweepTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SineSweepTest, CalibrationHoldsAcrossRatesAndPeriods) {
  auto [rate, period] = GetParam();
  SineArrivalProcess arrivals(rate, period, 7);
  // Equation 9: peak = 1.1 * target; Equation 8: 20% of cycle above it.
  EXPECT_NEAR(arrivals.peak_rate(), 1.1 * rate, 1e-9 * rate);
  EXPECT_NEAR(arrivals.FractionAboveTarget(), 0.2, 0.01);
  // Rate never negative anywhere in the cycle.
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(arrivals.Rate(period * i / 200.0), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatesTimesPeriods, SineSweepTest,
    ::testing::Combine(::testing::Values(50.0, 272.0, 572.0),
                       ::testing::Values(50.0, 280.0, 1000.0)));

class GreedyInvariantTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GreedyInvariantTest, NeverOverdrawsQueueOrBusyModels) {
  size_t queue_len = GetParam();
  static std::vector<int64_t> batches{16, 32, 48, 64};
  static std::vector<model::ModelProfile> models = Triple();
  for (int busy_mask = 0; busy_mask < 8; ++busy_mask) {
    for (double wait : {0.0, 0.2, 0.5, 1.0}) {
      ServingObs obs;
      obs.now = 50.0;
      obs.tau = 0.56;
      obs.batch_sizes = &batches;
      obs.models = &models;
      obs.queue_len = queue_len;
      if (queue_len > 0) obs.queue_waits = {wait};
      obs.busy_remaining = {busy_mask & 1 ? 0.3 : 0.0,
                            busy_mask & 2 ? 0.3 : 0.0,
                            busy_mask & 4 ? 0.3 : 0.0};
      SyncEnsembleGreedyPolicy sync;
      AsyncNoEnsemblePolicy async;
      GreedyBatchPolicy single(0);
      for (SchedulerPolicy* p :
           std::initializer_list<SchedulerPolicy*>{&sync, &async, &single}) {
        ServingAction a = p->Decide(obs);
        if (!a.process) continue;
        EXPECT_LE(a.batch_size, static_cast<int64_t>(queue_len))
            << p->name() << " overdraws the queue";
        EXPECT_NE(a.model_mask, 0u);
        for (size_t m = 0; m < 3; ++m) {
          if (a.model_mask & (1u << m)) {
            EXPECT_EQ(obs.busy_remaining[m], 0.0)
                << p->name() << " dispatched to a busy model";
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(QueueLengths, GreedyInvariantTest,
                         ::testing::Values(0, 1, 5, 16, 40, 64, 200));

}  // namespace
}  // namespace rafiki::serving
