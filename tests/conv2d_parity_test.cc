// Parity of the im2col + GEMM Conv2D against the original direct
// convolution loops, forward and backward, on padded and unpadded inputs.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/layer.h"
#include "tensor/tensor.h"

namespace rafiki {
namespace {

/// The seed repo's direct convolution forward, kept verbatim as reference.
Tensor DirectForward(const Tensor& input, const Tensor& weight,
                     const Tensor& bias, int64_t pad) {
  int64_t batch = input.dim(0), ic_n = input.dim(1);
  int64_t h = input.dim(2), w = input.dim(3);
  int64_t oc_n = weight.dim(0), kernel = weight.dim(2);
  int64_t oh = h + 2 * pad - kernel + 1, ow = w + 2 * pad - kernel + 1;
  Tensor out({batch, oc_n, oh, ow});
  const float* in = input.data();
  const float* wt = weight.data();
  float* po = out.data();
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t oc = 0; oc < oc_n; ++oc) {
      float bv = bias.at(oc);
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x) {
          double acc = bv;
          for (int64_t ic = 0; ic < ic_n; ++ic) {
            for (int64_t ky = 0; ky < kernel; ++ky) {
              int64_t iy = y + ky - pad;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < kernel; ++kx) {
                int64_t ix = x + kx - pad;
                if (ix < 0 || ix >= w) continue;
                acc += in[((n * ic_n + ic) * h + iy) * w + ix] *
                       wt[((oc * ic_n + ic) * kernel + ky) * kernel + kx];
              }
            }
          }
          po[((n * oc_n + oc) * oh + y) * ow + x] = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

/// The seed repo's direct backward pass: fills grad_input and accumulates
/// weight/bias grads.
void DirectBackward(const Tensor& input, const Tensor& weight,
                    const Tensor& grad_output, int64_t pad,
                    Tensor* grad_input, Tensor* grad_weight,
                    Tensor* grad_bias) {
  int64_t batch = input.dim(0), ic_n = input.dim(1);
  int64_t h = input.dim(2), w = input.dim(3);
  int64_t oc_n = weight.dim(0), kernel = weight.dim(2);
  int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  const float* go = grad_output.data();
  const float* wt = weight.data();
  float* gw = grad_weight->data();
  float* gi = grad_input->data();
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t oc = 0; oc < oc_n; ++oc) {
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x) {
          float g = go[((n * oc_n + oc) * oh + y) * ow + x];
          if (g == 0.0f) continue;
          grad_bias->at(oc) += g;
          for (int64_t ic = 0; ic < ic_n; ++ic) {
            for (int64_t ky = 0; ky < kernel; ++ky) {
              int64_t iy = y + ky - pad;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < kernel; ++kx) {
                int64_t ix = x + kx - pad;
                if (ix < 0 || ix >= w) continue;
                int64_t widx =
                    ((oc * ic_n + ic) * kernel + ky) * kernel + kx;
                int64_t iidx = ((n * ic_n + ic) * h + iy) * w + ix;
                gw[widx] += g * input.data()[iidx];
                gi[iidx] += g * wt[widx];
              }
            }
          }
        }
      }
    }
  }
}

void ExpectClose(const Tensor& got, const Tensor& want, float tol,
                 const char* what) {
  ASSERT_TRUE(got.SameShape(want)) << what;
  float max_err = 0.0f;
  for (int64_t i = 0; i < got.numel(); ++i)
    max_err = std::max(max_err, std::fabs(got.at(i) - want.at(i)));
  EXPECT_LE(max_err, tol) << what;
}

class Conv2DParityTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(Conv2DParityTest, ForwardMatchesDirect) {
  int64_t pad = GetParam();
  Rng rng(21);
  nn::Conv2D conv(2, 3, 3, pad, 0.3f, rng);
  Tensor x = Tensor::Randn({2, 2, 9, 7}, rng);
  Tensor got = conv.Forward(x, false);
  Tensor want = DirectForward(x, conv.Params()[0]->value,
                              conv.Params()[1]->value, pad);
  ExpectClose(got, want, 1e-4f, "forward output");
}

TEST_P(Conv2DParityTest, BackwardMatchesDirect) {
  int64_t pad = GetParam();
  Rng rng(22);
  nn::Conv2D conv(2, 3, 3, pad, 0.3f, rng);
  Tensor x = Tensor::Randn({2, 2, 9, 7}, rng);
  Tensor y = conv.Forward(x, true);
  Tensor g = Tensor::Randn(y.shape(), rng);
  Tensor got_gx = conv.Backward(g);

  const Tensor& weight = conv.Params()[0]->value;
  Tensor want_gx(x.shape());
  Tensor want_gw(weight.shape());
  Tensor want_gb(conv.Params()[1]->value.shape());
  DirectBackward(x, weight, g, pad, &want_gx, &want_gw, &want_gb);

  ExpectClose(got_gx, want_gx, 1e-4f, "input grad");
  ExpectClose(conv.Params()[0]->grad, want_gw, 1e-4f, "weight grad");
  ExpectClose(conv.Params()[1]->grad, want_gb, 1e-4f, "bias grad");
}

TEST_P(Conv2DParityTest, GradsAccumulateAcrossBackwardCalls) {
  int64_t pad = GetParam();
  Rng rng(23);
  nn::Conv2D conv(1, 2, 3, pad, 0.3f, rng);
  Tensor x = Tensor::Randn({1, 1, 6, 6}, rng);
  Tensor y = conv.Forward(x, true);
  Tensor g = Tensor::Randn(y.shape(), rng);
  (void)conv.Backward(g);
  Tensor first_gw = conv.Params()[0]->grad;
  (void)conv.Forward(x, true);
  (void)conv.Backward(g);
  ExpectClose(conv.Params()[0]->grad, first_gw.Mul(2.0f), 1e-3f,
              "accumulated weight grad");
}

INSTANTIATE_TEST_SUITE_P(PaddedAndUnpadded, Conv2DParityTest,
                         ::testing::Values<int64_t>(0, 1, 2),
                         [](const ::testing::TestParamInfo<int64_t>& info) {
                           return "pad" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rafiki
