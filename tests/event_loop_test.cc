#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace rafiki::net {
namespace {

/// A connected fd pair; both ends are readable once the other writes.
struct FdPair {
  int a = -1;
  int b = -1;
  FdPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~FdPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void MakeReadable(int fd) const {
    int other = fd == a ? b : a;
    char byte = 'x';
    EXPECT_EQ(::send(other, &byte, 1, 0), 1);
  }
};

/// EventLoop on a hand-cranked clock: PollOnce(0) never sleeps and timers
/// fire exactly when the test advances `now`.
struct FakeClockLoop {
  double now = 0.0;
  EventLoop loop;
  FakeClockLoop()
      : loop([this] {
          EventLoop::Options options;
          options.clock = [this] { return now; };
          return options;
        }()) {}
};

TEST(EventLoopTest, DispatchesReadableFd) {
  FdPair fds;
  EventLoop loop;
  int reads = 0;
  ASSERT_TRUE(loop.AddFd(fds.a, true, false, [&](uint32_t events) {
    EXPECT_NE(events & EPOLLIN, 0u);
    char buf[8];
    EXPECT_EQ(::recv(fds.a, buf, sizeof(buf), 0), 1);
    ++reads;
  }).ok());
  EXPECT_EQ(loop.PollOnce(0), 0);  // nothing pending
  fds.MakeReadable(fds.a);
  EXPECT_EQ(loop.PollOnce(0.5), 1);
  EXPECT_EQ(reads, 1);
  EXPECT_EQ(loop.watcher_count(), 1u);
}

TEST(EventLoopTest, AddFdRejectsDuplicatesAndBadArgs) {
  FdPair fds;
  EventLoop loop;
  ASSERT_TRUE(loop.AddFd(fds.a, true, false, [](uint32_t) {}).ok());
  EXPECT_FALSE(loop.AddFd(fds.a, true, false, [](uint32_t) {}).ok());
  EXPECT_FALSE(loop.AddFd(-1, true, false, [](uint32_t) {}).ok());
  EXPECT_FALSE(loop.ModifyFd(fds.b, true, false).ok());
  EXPECT_FALSE(loop.RemoveFd(fds.b).ok());
  EXPECT_TRUE(loop.RemoveFd(fds.a).ok());
  EXPECT_FALSE(loop.WatchingFd(fds.a));
}

TEST(EventLoopTest, CallbackRemovesOwnFdDuringDispatch) {
  FdPair fds;
  EventLoop loop;
  int calls = 0;
  ASSERT_TRUE(loop.AddFd(fds.a, true, false, [&](uint32_t) {
    ++calls;
    EXPECT_TRUE(loop.RemoveFd(fds.a).ok());
  }).ok());
  fds.MakeReadable(fds.a);
  loop.PollOnce(0.5);
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(loop.WatchingFd(fds.a));
  // The byte was never drained but the watcher is gone: no further events.
  EXPECT_EQ(loop.PollOnce(0), 0);
}

TEST(EventLoopTest, CallbackRemovesSiblingDuringDispatch) {
  // Both fds readable in the same batch; whichever dispatches first
  // removes the other. The removed watcher's event must be discarded
  // (generation tag), so exactly one callback runs.
  FdPair fds;
  EventLoop loop;
  int calls = 0;
  ASSERT_TRUE(loop.AddFd(fds.a, true, false, [&](uint32_t) {
    ++calls;
    (void)loop.RemoveFd(fds.b);
  }).ok());
  ASSERT_TRUE(loop.AddFd(fds.b, true, false, [&](uint32_t) {
    ++calls;
    (void)loop.RemoveFd(fds.a);
  }).ok());
  fds.MakeReadable(fds.a);
  fds.MakeReadable(fds.b);
  loop.PollOnce(0.5);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(loop.watcher_count(), 1u);
}

TEST(EventLoopTest, CallbackAddsFdDuringDispatch) {
  // Adding a watcher mid-dispatch may grow the watcher table while one of
  // its callbacks is executing; the new fd joins the next tick.
  FdPair first;
  FdPair second;
  EventLoop loop;
  int second_reads = 0;
  ASSERT_TRUE(loop.AddFd(first.a, true, false, [&](uint32_t) {
    char buf[8];
    (void)::recv(first.a, buf, sizeof(buf), 0);
    if (!loop.WatchingFd(second.a)) {
      EXPECT_TRUE(loop.AddFd(second.a, true, false, [&](uint32_t) {
        char inner[8];
        (void)::recv(second.a, inner, sizeof(inner), 0);
        ++second_reads;
      }).ok());
    }
  }).ok());
  second.MakeReadable(second.a);  // readable before it is even watched
  first.MakeReadable(first.a);
  loop.PollOnce(0.5);
  EXPECT_EQ(second_reads, 0);  // registered mid-tick, fires next tick
  loop.PollOnce(0.5);
  EXPECT_EQ(second_reads, 1);
}

TEST(EventLoopTest, ReaddAfterRemoveGetsFreshEvents) {
  FdPair fds;
  EventLoop loop;
  int old_calls = 0;
  int new_calls = 0;
  ASSERT_TRUE(loop.AddFd(fds.a, true, false, [&](uint32_t) {
    ++old_calls;
    // Swap registrations mid-dispatch: remove + re-add with a new
    // callback. Events already harvested for the old registration die.
    EXPECT_TRUE(loop.RemoveFd(fds.a).ok());
    EXPECT_TRUE(loop.AddFd(fds.a, true, false, [&](uint32_t) {
      char buf[8];
      (void)::recv(fds.a, buf, sizeof(buf), 0);
      ++new_calls;
    }).ok());
  }).ok());
  fds.MakeReadable(fds.a);
  loop.PollOnce(0.5);
  EXPECT_EQ(old_calls, 1);
  loop.PollOnce(0.5);
  EXPECT_EQ(old_calls, 1);
  EXPECT_EQ(new_calls, 1);
}

TEST(EventLoopTest, ModifyFdTogglesWriteInterest) {
  FdPair fds;
  EventLoop loop;
  bool got_write = false;
  ASSERT_TRUE(loop.AddFd(fds.a, true, false, [&](uint32_t events) {
    if (events & EPOLLOUT) got_write = true;
  }).ok());
  EXPECT_EQ(loop.PollOnce(0), 0);  // read-only interest: no events
  ASSERT_TRUE(loop.ModifyFd(fds.a, true, true).ok());
  EXPECT_EQ(loop.PollOnce(0.5), 1);  // socket buffer empty => writable
  EXPECT_TRUE(got_write);
  got_write = false;
  ASSERT_TRUE(loop.ModifyFd(fds.a, true, false).ok());
  EXPECT_EQ(loop.PollOnce(0), 0);
  EXPECT_FALSE(got_write);
}

TEST(EventLoopTest, PostFromAnotherThreadWakesRun) {
  EventLoop loop;
  std::thread::id ran_on{};
  std::thread runner([&] { loop.Run(); });
  std::thread::id runner_id = runner.get_id();
  loop.Post([&] {
    ran_on = std::this_thread::get_id();
    loop.Stop();
  });
  runner.join();
  EXPECT_EQ(ran_on, runner_id);
}

TEST(EventLoopTest, PostDelayedFiresAfterDelay) {
  FakeClockLoop fake;
  bool fired = false;
  fake.loop.PollOnce(0);  // claim the loop thread
  fake.loop.PostDelayed(0.050, [&] { fired = true; });
  fake.now = 0.049;
  fake.loop.PollOnce(0);
  EXPECT_FALSE(fired);
  fake.now = 0.051;
  fake.loop.PollOnce(0);
  EXPECT_TRUE(fired);
}

TEST(EventLoopTest, TimerAccuracyWithinTenMillisecondsFakeClock) {
  // The wheel-driven deadline contract the idle-timeout and reconnect
  // paths rely on: observed against a fake clock stepped at 1 ms, a timer
  // fires no earlier than its deadline and no more than 10 ms after it.
  FakeClockLoop fake;
  const double kDeadline = 0.1234;
  double fired_at = -1.0;
  fake.loop.RunAfter(kDeadline, [&] { fired_at = fake.now; });
  while (fake.now < kDeadline + 0.020 && fired_at < 0) {
    fake.now += 0.001;
    fake.loop.PollOnce(0);
  }
  ASSERT_GE(fired_at, 0.0) << "timer never fired";
  EXPECT_GE(fired_at, kDeadline - 1e-9);
  EXPECT_LE(fired_at - kDeadline, 0.010);
}

TEST(EventLoopTest, CancelTimerStopsPendingFire) {
  FakeClockLoop fake;
  bool fired = false;
  TimerId id = fake.loop.RunAfter(0.030, [&] { fired = true; });
  EXPECT_TRUE(fake.loop.CancelTimer(id));
  fake.now = 0.100;
  fake.loop.PollOnce(0);
  EXPECT_FALSE(fired);
}

TEST(EventLoopTest, RunEveryRepeatsUntilCancelled) {
  FakeClockLoop fake;
  int fires = 0;
  TimerId id = 0;
  id = fake.loop.RunEvery(0.010, [&] {
    if (++fires == 4) fake.loop.CancelTimer(id);
  });
  for (int step = 0; step < 100; ++step) {
    fake.now += 0.001;
    fake.loop.PollOnce(0);
  }
  EXPECT_EQ(fires, 4);
}

TEST(EventLoopTest, TickHooksBracketDispatch) {
  FdPair fds;
  EventLoop loop;
  std::vector<std::string> trace;
  loop.SetTickBeginHook([&] { trace.push_back("begin"); });
  loop.SetTickEndHook([&] { trace.push_back("end"); });
  ASSERT_TRUE(loop.AddFd(fds.a, true, false, [&](uint32_t) {
    char buf[8];
    (void)::recv(fds.a, buf, sizeof(buf), 0);
    trace.push_back("fd");
  }).ok());
  fds.MakeReadable(fds.a);
  loop.PollOnce(0.5);
  EXPECT_EQ(trace, (std::vector<std::string>{"begin", "fd", "end"}));
}

TEST(EventLoopTest, StopFromTimerEndsRun) {
  EventLoop loop;
  bool fired = false;
  loop.RunAfter(0.010, [&] {
    fired = true;
    loop.Stop();
  });
  loop.Run();  // returns once the timer stops it
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace rafiki::net
