#include <set>

#include "data/dataset.h"
#include "data/preprocess.h"
#include "gtest/gtest.h"

namespace rafiki::data {
namespace {

TEST(DatasetTest, SyntheticTaskShapesAndLabels) {
  SyntheticTaskOptions options;
  options.num_classes = 5;
  options.samples_per_class = 20;
  options.input_dim = 8;
  Dataset d = MakeSyntheticTask(options);
  EXPECT_EQ(d.size(), 100);
  EXPECT_EQ(d.x.shape(), (Shape{100, 8}));
  std::set<int64_t> labels(d.labels.begin(), d.labels.end());
  EXPECT_EQ(labels.size(), 5u);
}

TEST(DatasetTest, SyntheticTaskDeterministicPerSeed) {
  SyntheticTaskOptions options;
  Dataset a = MakeSyntheticTask(options);
  Dataset b = MakeSyntheticTask(options);
  ASSERT_EQ(a.x.numel(), b.x.numel());
  for (int64_t i = 0; i < a.x.numel(); ++i) {
    EXPECT_EQ(a.x.at(i), b.x.at(i));
  }
  options.seed = 999;
  Dataset c = MakeSyntheticTask(options);
  bool any_diff = false;
  for (int64_t i = 0; i < a.x.numel(); ++i) {
    any_diff |= a.x.at(i) != c.x.at(i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(DatasetTest, SeparableTaskIsLearnable) {
  // High separation => nearest-center classification should be easy.
  SyntheticTaskOptions options;
  options.separation = 8.0;
  options.spread = 0.5;
  options.num_classes = 3;
  options.samples_per_class = 50;
  Dataset d = MakeSyntheticTask(options);
  // Verify classes are separated: mean intra-class distance below
  // inter-class distance between per-class means.
  int64_t dim = d.x.dim(1);
  std::vector<std::vector<double>> means(
      3, std::vector<double>(static_cast<size_t>(dim), 0.0));
  std::vector<int> counts(3, 0);
  for (int64_t i = 0; i < d.size(); ++i) {
    auto k = static_cast<size_t>(d.labels[static_cast<size_t>(i)]);
    ++counts[k];
    for (int64_t j = 0; j < dim; ++j) {
      means[k][static_cast<size_t>(j)] += d.x.at(i * dim + j);
    }
  }
  for (size_t k = 0; k < 3; ++k) {
    for (double& v : means[k]) v /= counts[k];
  }
  double inter = 0.0;
  for (int64_t j = 0; j < dim; ++j) {
    double diff = means[0][static_cast<size_t>(j)] -
                  means[1][static_cast<size_t>(j)];
    inter += diff * diff;
  }
  EXPECT_GT(inter, 1.0) << "class centers should be far apart";
}

TEST(DatasetTest, SliceCopiesRows) {
  SyntheticTaskOptions options;
  options.num_classes = 2;
  options.samples_per_class = 10;
  options.input_dim = 4;
  Dataset d = MakeSyntheticTask(options);
  Dataset s = d.Slice(5, 15);
  EXPECT_EQ(s.size(), 10);
  EXPECT_EQ(s.x.dim(0), 10);
  EXPECT_EQ(s.labels[0], d.labels[5]);
  EXPECT_EQ(s.x.at(0), d.x.at(5 * 4));
}

TEST(DatasetTest, SplitPartitionsAllRows) {
  SyntheticTaskOptions options;
  options.num_classes = 4;
  options.samples_per_class = 25;
  Dataset d = MakeSyntheticTask(options);
  Rng rng(1);
  DataSplits s = SplitDataset(d, 0.7, 0.2, rng);
  EXPECT_EQ(s.train.size() + s.validation.size() + s.test.size(), d.size());
  EXPECT_EQ(s.train.size(), 70);
  EXPECT_EQ(s.validation.size(), 20);
  EXPECT_EQ(s.test.size(), 10);
}

TEST(BatchIteratorTest, CoversEpochExactlyOnce) {
  SyntheticTaskOptions options;
  options.num_classes = 2;
  options.samples_per_class = 17;  // 34 rows, batch 8 -> 5 batches
  Dataset d = MakeSyntheticTask(options);
  BatchIterator it(d, 8, Rng(3));
  EXPECT_EQ(it.batches_per_epoch(), 5);
  Tensor x;
  std::vector<int64_t> labels;
  int64_t total = 0;
  int batches = 0;
  while (it.Next(&x, &labels)) {
    total += x.dim(0);
    ++batches;
  }
  EXPECT_EQ(total, 34);
  EXPECT_EQ(batches, 5);
  EXPECT_FALSE(it.Next(&x, &labels));
  it.Reset();
  EXPECT_TRUE(it.Next(&x, &labels));
}

TEST(PreprocessTest, NormalizeZeroMeanUnitVar) {
  SyntheticImageOptions options;
  Dataset d = MakeSyntheticImages(options);
  std::vector<float> mean, stddev;
  ComputeChannelStats(d.x, &mean, &stddev);
  NormalizeOp norm(mean, stddev);
  Rng rng(1);
  Tensor batch = d.x;
  norm.Apply(&batch, rng);
  std::vector<float> mean2, stddev2;
  ComputeChannelStats(batch, &mean2, &stddev2);
  for (float m : mean2) EXPECT_NEAR(m, 0.0f, 1e-3f);
  for (float s : stddev2) EXPECT_NEAR(s, 1.0f, 1e-3f);
}

TEST(PreprocessTest, PadCropPreservesShape) {
  SyntheticImageOptions options;
  options.samples_per_class = 4;
  Dataset d = MakeSyntheticImages(options);
  Shape before = d.x.shape();
  PadCropOp crop(4);
  Rng rng(2);
  crop.Apply(&d.x, rng);
  EXPECT_EQ(d.x.shape(), before);
}

TEST(PreprocessTest, FlipAlwaysReverses) {
  Tensor batch({1, 1, 1, 4}, {1, 2, 3, 4});
  RandomFlipOp flip(1.0);
  Rng rng(3);
  flip.Apply(&batch, rng);
  EXPECT_EQ(batch.at(0), 4.0f);
  EXPECT_EQ(batch.at(3), 1.0f);
}

TEST(PreprocessTest, FlipNeverWhenZeroProb) {
  Tensor batch({1, 1, 1, 4}, {1, 2, 3, 4});
  RandomFlipOp flip(0.0);
  Rng rng(3);
  flip.Apply(&batch, rng);
  EXPECT_EQ(batch.at(0), 1.0f);
}

TEST(PreprocessTest, ZeroRotationIsIdentity) {
  SyntheticImageOptions options;
  options.samples_per_class = 2;
  Dataset d = MakeSyntheticImages(options);
  Tensor before = d.x;
  RandomRotationOp rot(0.0);
  Rng rng(4);
  rot.Apply(&d.x, rng);
  for (int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_EQ(before.at(i), d.x.at(i));
  }
}

TEST(PreprocessTest, RotationKeepsShapeAndBoundedValues) {
  SyntheticImageOptions options;
  options.samples_per_class = 2;
  Dataset d = MakeSyntheticImages(options);
  Shape shape = d.x.shape();
  float max_before = d.x.MaxAbs();
  RandomRotationOp rot(30.0);
  Rng rng(5);
  rot.Apply(&d.x, rng);
  EXPECT_EQ(d.x.shape(), shape);
  EXPECT_LE(d.x.MaxAbs(), max_before + 1e-5f);
}

class WhitenerParamTest : public ::testing::TestWithParam<WhitenKind> {};

TEST_P(WhitenerParamTest, WhitenedCovarianceIsIdentity) {
  // Property (Table 1 group 1 whitening): transformed training features
  // have ~identity covariance for both PCA and ZCA.
  SyntheticTaskOptions options;
  options.num_classes = 3;
  options.samples_per_class = 200;
  options.input_dim = 6;
  Dataset d = MakeSyntheticTask(options);
  Whitener whitener(d.x, GetParam(), 1e-8);
  Tensor w = d.x;
  whitener.Apply(&w);
  int64_t n = w.dim(0), dim = w.dim(1);
  for (int64_t a = 0; a < dim; ++a) {
    for (int64_t b = a; b < dim; ++b) {
      double cov = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        cov += static_cast<double>(w.at(i * dim + a)) * w.at(i * dim + b);
      }
      cov /= (n - 1);
      EXPECT_NEAR(cov, a == b ? 1.0 : 0.0, 0.05)
          << "cov(" << a << "," << b << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothKinds, WhitenerParamTest,
                         ::testing::Values(WhitenKind::kPca,
                                           WhitenKind::kZca));

TEST(PipelineTest, AppliesOpsInOrder) {
  Pipeline pipeline;
  pipeline.Add(std::make_unique<PadCropOp>(2));
  pipeline.Add(std::make_unique<RandomFlipOp>(0.5));
  EXPECT_EQ(pipeline.size(), 2u);
  EXPECT_EQ(pipeline.OpNames(),
            (std::vector<std::string>{"pad_crop", "flip"}));
  SyntheticImageOptions options;
  options.samples_per_class = 2;
  Dataset d = MakeSyntheticImages(options);
  Shape shape = d.x.shape();
  Rng rng(6);
  pipeline.Apply(&d.x, rng);
  EXPECT_EQ(d.x.shape(), shape);
}

}  // namespace
}  // namespace rafiki::data
