#include "net/http_server.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/http_client.h"
#include "net/socket.h"

namespace rafiki::net {
namespace {

HttpResponse EchoHandler(const HttpRequest& request) {
  HttpResponse resp;
  resp.body = request.method + " " + request.path;
  if (!request.query.empty()) resp.body += "?" + request.query;
  if (!request.body.empty()) resp.body += " body=" + request.body;
  return resp;
}

/// Raw-socket helper: sends `wire` and reads until `want` complete
/// responses parsed or the peer closes. Returns the statuses in order.
std::vector<int> RawExchange(uint16_t port, const std::string& wire,
                             size_t want) {
  auto sock = ConnectTcp("127.0.0.1", port, 10.0);
  EXPECT_TRUE(sock.ok()) << sock.status().ToString();
  if (!sock.ok()) return {};
  EXPECT_TRUE(SendAll(sock->fd(), wire.data(), wire.size()).ok());
  std::vector<int> statuses;
  std::string buffered;
  HttpResponseParser parser;
  char buf[4096];
  while (statuses.size() < want) {
    Result<size_t> n = RecvSome(sock->fd(), buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    buffered.append(buf, *n);
    for (;;) {
      size_t consumed = parser.Feed(buffered.data(), buffered.size());
      buffered.erase(0, consumed);
      if (!parser.done()) break;
      statuses.push_back(parser.status());
      parser = HttpResponseParser();
      if (buffered.empty()) break;
    }
  }
  return statuses;
}

TEST(HttpServerTest, ServesBasicGetOverRealSocket) {
  HttpServerOptions opts;
  opts.num_workers = 2;
  HttpServer server(EchoHandler, opts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  HttpClient client("127.0.0.1", server.port());
  Result<HttpResponse> resp = client.Get("/jobs/j0?x=1");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "GET /jobs/j0?x=1");

  Result<HttpResponse> post = client.Post("/query?job=i0", "1,2,3");
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->body, "POST /query?job=i0 body=1,2,3");

  server.Stop();
  HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_total, 2u);
  EXPECT_EQ(stats.responses_total, 2u);
  EXPECT_EQ(stats.handled, 2u);
  EXPECT_EQ(stats.accepted_connections, 1u);  // keep-alive reused it
}

TEST(HttpServerTest, KeepAliveServesManySequentialRequests) {
  HttpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 50; ++i) {
    Result<HttpResponse> resp = client.Get("/r" + std::to_string(i));
    ASSERT_TRUE(resp.ok()) << i << ": " << resp.status().ToString();
    EXPECT_EQ(resp->status, 200);
    EXPECT_EQ(resp->body, "GET /r" + std::to_string(i));
  }
  server.Stop();
  EXPECT_EQ(server.stats().accepted_connections, 1u);
  EXPECT_EQ(server.stats().requests_total, 50u);
}

TEST(HttpServerTest, TornWritesReassemble) {
  HttpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  auto sock = ConnectTcp("127.0.0.1", server.port(), 10.0);
  ASSERT_TRUE(sock.ok());
  std::string wire =
      "POST /q HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  // Dribble the request a few bytes at a time across separate packets.
  for (size_t i = 0; i < wire.size(); i += 3) {
    size_t n = std::min<size_t>(3, wire.size() - i);
    ASSERT_TRUE(SendAll(sock->fd(), wire.data() + i, n).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string buffered;
  HttpResponseParser parser;
  char buf[4096];
  while (!parser.done()) {
    Result<size_t> n = RecvSome(sock->fd(), buf, sizeof(buf));
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0u);
    parser.Feed(buf, *n);
  }
  EXPECT_EQ(parser.status(), 200);
  EXPECT_EQ(parser.body(), "POST /q body=hello");
  server.Stop();
}

TEST(HttpServerTest, PipelinedRequestsAnsweredInOrder) {
  HttpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  // Three requests in a single write; responses must come back 1:1 in
  // order on the same connection.
  std::string wire =
      "GET /a HTTP/1.1\r\n\r\n"
      "GET /b HTTP/1.1\r\n\r\n"
      "GET /c HTTP/1.1\r\nConnection: close\r\n\r\n";
  auto sock = ConnectTcp("127.0.0.1", server.port(), 10.0);
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(SendAll(sock->fd(), wire.data(), wire.size()).ok());
  std::string all;
  char buf[4096];
  for (;;) {
    Result<size_t> n = RecvSome(sock->fd(), buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    if (*n == 0) break;  // server closed after the third response
    all.append(buf, *n);
  }
  size_t a = all.find("GET /a");
  size_t b = all.find("GET /b");
  size_t c = all.find("GET /c");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  server.Stop();
  EXPECT_EQ(server.stats().requests_total, 3u);
  EXPECT_EQ(server.stats().responses_total, 3u);
}

TEST(HttpServerTest, MalformedRequestsGetParserStatusAndClose) {
  HttpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  struct Case {
    const char* wire;
    int status;
  } cases[] = {
      {"GARBAGE\r\n\r\n", 400},
      {"GET / HTTP/9.9\r\n\r\n", 505},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
      {"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", 413},
  };
  for (const Case& c : cases) {
    std::vector<int> statuses = RawExchange(server.port(), c.wire, 1);
    ASSERT_EQ(statuses.size(), 1u) << c.wire;
    EXPECT_EQ(statuses[0], c.status) << c.wire;
  }
  server.Stop();
  EXPECT_EQ(server.stats().parse_errors, 4u);
  EXPECT_EQ(server.stats().responses_total, 4u);
}

TEST(HttpServerTest, OverloadShedsBoundedAndConserves) {
  // Latch the handler so admitted requests pile up at the cap; everything
  // beyond max_inflight must be answered 503 by the event loop.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  constexpr size_t kCap = 2;
  constexpr int kClients = 8;

  HttpServerOptions opts;
  opts.max_inflight = kCap;
  opts.num_handler_threads = static_cast<int>(kCap);
  HttpServer server(
      [&](const HttpRequest&) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
        return HttpResponse{};
      },
      opts);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  std::atomic<int> overloaded_count{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      HttpClient client("127.0.0.1", server.port());
      Result<HttpResponse> resp = client.Get("/");
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      if (resp->status == 200) ++ok_count;
      if (resp->status == 503) ++overloaded_count;
    });
  }
  // Wait until every request reached the server, then open the latch.
  for (int i = 0; i < 10000; ++i) {
    if (server.stats().requests_total == static_cast<uint64_t>(kClients)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.stats().requests_total,
            static_cast<uint64_t>(kClients));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (std::thread& t : clients) t.join();
  server.Stop();

  // Exact admission accounting: the cap admits kCap, the rest shed.
  EXPECT_EQ(ok_count.load(), static_cast<int>(kCap));
  EXPECT_EQ(overloaded_count.load(), kClients - static_cast<int>(kCap));
  HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.handled, kCap);
  EXPECT_EQ(stats.rejected_overload, kClients - kCap);
  EXPECT_EQ(stats.requests_total, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.responses_total,
            stats.handled + stats.rejected_overload + stats.parse_errors +
                stats.rejected_draining);
}

TEST(HttpServerTest, GracefulShutdownDrainsInFlightRequests) {
  std::atomic<bool> entered{false};
  HttpServer server([&](const HttpRequest&) {
    entered = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    HttpResponse resp;
    resp.body = "slow-done";
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  Result<HttpResponse> got = Status::Internal("unset");
  std::thread client_thread([&] {
    HttpClient client("127.0.0.1", port);
    got = client.Get("/slow");
  });
  while (!entered) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  server.Stop();  // must wait for the in-flight response to be written
  client_thread.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(got->body, "slow-done");
  EXPECT_EQ(server.stats().handled, 1u);
}

TEST(HttpServerTest, RequestsDuringDrainAre503) {
  // A latched handler keeps the server in kDraining long enough for a
  // request on a second, already-accepted connection to be refused 503.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  HttpServerOptions opts;
  // One worker: the idle second connection shares the event loop with the
  // busy one, so it drains (answers 503) instead of being closed outright
  // by an already-idle worker.
  opts.num_workers = 1;
  HttpServer server(
      [&](const HttpRequest&) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
        return HttpResponse{};
      },
      opts);
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  std::thread first([&] {
    HttpClient client("127.0.0.1", port);
    (void)client.Get("/hold");
  });
  while (server.stats().requests_total == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Second connection must exist before Stop() closes the listener.
  auto sock = ConnectTcp("127.0.0.1", port, 10.0);
  ASSERT_TRUE(sock.ok());
  while (server.stats().accepted_connections < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread stopper([&] { server.Stop(); });
  // Let Stop() pass the acceptor join (one 50 ms poll) into kDraining
  // before the late request goes out, so it is parsed mid-drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::string wire = "GET /late HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(SendAll(sock->fd(), wire.data(), wire.size()).ok());
  std::string buffered;
  HttpResponseParser parser;
  char buf[4096];
  while (!parser.done()) {
    Result<size_t> n = RecvSome(sock->fd(), buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_GT(*n, 0u);
    parser.Feed(buf, *n);
  }
  EXPECT_EQ(parser.status(), 503);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  first.join();
  stopper.join();
  EXPECT_EQ(server.stats().rejected_draining, 1u);
  EXPECT_EQ(server.stats().handled, 1u);
}

TEST(HttpServerTest, PartialWritesFlushViaEpollout) {
  // A tiny send buffer forces send() to return EAGAIN mid-response; the
  // EPOLLOUT path must finish the flush.
  std::string big(512 * 1024, 'x');
  HttpServerOptions opts;
  opts.send_buffer_bytes = 4096;
  HttpServer server(
      [&](const HttpRequest&) {
        HttpResponse resp;
        resp.body = big;
        return resp;
      },
      opts);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  Result<HttpResponse> resp = client.Get("/big");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body.size(), big.size());
  EXPECT_EQ(resp->body, big);
  server.Stop();
}

TEST(HttpServerTest, InlineHandlersServeMixedInlineAndParkedCompletions) {
  // Run-to-completion mode: handlers execute on the event-loop thread.
  // /inline/N completes its writer immediately (the no-handoff fast path);
  // /parked/N hands the writer to a background thread, so its completion
  // comes back through the cross-thread mailbox while later pipelined
  // requests complete inline — responses must still be emitted in strict
  // request order.
  std::mutex mu;
  std::vector<HttpServer::ResponseWriter> parked;
  HttpServerOptions opts;
  opts.inline_handlers = true;
  opts.num_workers = 1;
  HttpServer server(
      HttpServer::AsyncHandler(
          [&](const HttpRequest& request, HttpServer::ResponseWriter writer) {
            if (request.path.rfind("/parked/", 0) == 0) {
              std::lock_guard<std::mutex> lock(mu);
              parked.push_back(std::move(writer));
              return;  // completed later, from another thread
            }
            HttpResponse& out = writer.response();
            out.body.assign("inline ");
            out.body.append(request.path);
            writer.Complete(out);
          }),
      opts);
  ASSERT_TRUE(server.Start().ok());

  std::thread completer([&] {
    // Complete parked writers out-of-band once both are captured.
    for (;;) {
      std::unique_lock<std::mutex> lock(mu);
      if (parked.size() >= 2) break;
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::lock_guard<std::mutex> lock(mu);
    for (HttpServer::ResponseWriter& w : parked) {
      HttpResponse resp;
      resp.body = "parked";
      w.Complete(resp);
    }
    parked.clear();
  });

  // Pipelined burst: parked, inline, parked, inline. The two inline
  // responses are ready first but must wait behind their parked
  // predecessors.
  auto sock = ConnectTcp("127.0.0.1", server.port(), 10.0);
  ASSERT_TRUE(sock.ok());
  std::string wire =
      "GET /parked/0 HTTP/1.1\r\n\r\n"
      "GET /inline/1 HTTP/1.1\r\n\r\n"
      "GET /parked/2 HTTP/1.1\r\n\r\n"
      "GET /inline/3 HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(SendAll(sock->fd(), wire.data(), wire.size()).ok());
  std::vector<std::string> bodies;
  std::string buffered;
  HttpResponseParser parser;
  char buf[4096];
  while (bodies.size() < 4) {
    Result<size_t> n = RecvSome(sock->fd(), buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_GT(*n, 0u);
    buffered.append(buf, *n);
    for (;;) {
      size_t consumed = parser.Feed(buffered.data(), buffered.size());
      buffered.erase(0, consumed);
      if (!parser.done()) break;
      EXPECT_EQ(parser.status(), 200);
      bodies.push_back(parser.body());
      parser.Reset();
      if (buffered.empty()) break;
    }
  }
  completer.join();
  EXPECT_EQ(bodies, (std::vector<std::string>{
                        "parked", "inline /inline/1", "parked",
                        "inline /inline/3"}));
  server.Stop();
  HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_total, 4u);
  EXPECT_EQ(stats.responses_total, 4u);
  EXPECT_EQ(stats.handled, 4u);
}

TEST(HttpServerTest, TornWritevResumesMidGatherAcrossPipelinedResponses) {
  // Pipelined requests queue several responses in one connection's output
  // queue, so a single sendmsg gathers many head+body iovec pairs. A tiny
  // SO_SNDBUF forces the kernel to accept partial writes that land in the
  // middle of an iovec and in the middle of the queue; the EPOLLOUT resume
  // path must pick up at the exact byte offset, across item boundaries,
  // without corrupting or reordering anything.
  constexpr int kRequests = 10;
  HttpServerOptions opts;
  opts.send_buffer_bytes = 4096;
  opts.num_workers = 1;  // all responses share one worker's outq
  HttpServer server(
      [](const HttpRequest& request) {
        // Distinct odd-sized bodies so partial-write boundaries never line
        // up with item boundaries: request /p3 gets 3*8191 bytes of 'd'.
        int i = std::stoi(request.path.substr(2));
        HttpResponse resp;
        resp.body.assign(static_cast<size_t>(i + 1) * 8191,
                         static_cast<char>('a' + i));
        return resp;
      },
      opts);
  ASSERT_TRUE(server.Start().ok());
  auto sock = ConnectTcp("127.0.0.1", server.port(), 10.0);
  ASSERT_TRUE(sock.ok());
  std::string wire;
  for (int i = 0; i < kRequests; ++i) {
    wire += "GET /p" + std::to_string(i) + " HTTP/1.1\r\n\r\n";
  }
  ASSERT_TRUE(SendAll(sock->fd(), wire.data(), wire.size()).ok());
  std::string buffered;
  HttpResponseParser parser;
  char buf[8192];
  int got = 0;
  while (got < kRequests) {
    Result<size_t> n = RecvSome(sock->fd(), buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_GT(*n, 0u) << "connection closed after " << got << " responses";
    buffered.append(buf, *n);
    for (;;) {
      size_t consumed = parser.Feed(buffered.data(), buffered.size());
      buffered.erase(0, consumed);
      if (!parser.done()) break;
      EXPECT_EQ(parser.status(), 200);
      std::string want(static_cast<size_t>(got + 1) * 8191,
                       static_cast<char>('a' + got));
      EXPECT_EQ(parser.body(), want) << "response " << got << " corrupted";
      ++got;
      parser.Reset();
      if (buffered.empty()) break;
    }
  }
  server.Stop();
  HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_total, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.responses_total, static_cast<uint64_t>(kRequests));
}

TEST(HttpServerTest, ConcurrentClientsAllServed) {
  HttpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      HttpClient client("127.0.0.1", server.port());
      for (int i = 0; i < kPerThread; ++i) {
        std::string path =
            "/t" + std::to_string(t) + "/r" + std::to_string(i);
        Result<HttpResponse> resp = client.Get(path);
        if (resp.ok() && resp->status == 200 &&
            resp->body == "GET " + path) {
          ++ok;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server.Stop();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_total,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.responses_total, stats.requests_total);
}

}  // namespace
}  // namespace rafiki::net
