// Parity and regression tests for the fused SGD step: the single-pass
// update must match a plain scalar reference across learning-rate
// schedules and across the serial/parallel size boundary, and velocity
// must be keyed by parameter *position*, never by name.

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "nn/layer.h"
#include "nn/sgd.h"

namespace rafiki::nn {
namespace {

// Three-pass scalar reference of one momentum+weight-decay step. Same
// per-element math as Sgd::FusedUpdate but written naively.
void ReferenceStep(std::vector<float>* w, const std::vector<float>& g,
                   std::vector<float>* v, float mu, float wd, float lr) {
  for (size_t i = 0; i < w->size(); ++i) {
    float ge = g[i] + wd * (*w)[i];
    float vel = mu * (*v)[i] - lr * ge;
    (*v)[i] = vel;
    (*w)[i] += vel;
  }
}

ParamTensor MakeParam(const std::string& name, int64_t n, uint64_t seed) {
  ParamTensor p;
  p.name = name;
  p.value = Tensor({n});
  p.grad = Tensor({n});
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    p.value.data()[i] = static_cast<float>(rng.Uniform() - 0.5);
  }
  return p;
}

void FillGrad(ParamTensor* p, int step) {
  float* g = p->grad.data();
  int64_t n = p->grad.numel();
  for (int64_t i = 0; i < n; ++i) {
    g[i] = std::sin(0.01f * static_cast<float>(i + 1) *
                    static_cast<float>(step + 1));
  }
}

void RunScheduleParity(SgdOptions opts) {
  // One tensor below and one above kParallelMinElems, so both the serial
  // and the thread-pool-split paths are checked against the reference.
  std::vector<int64_t> sizes = {257, Sgd::kParallelMinElems + 13};
  std::vector<ParamTensor> params;
  std::vector<std::vector<float>> ref_w, ref_v;
  for (size_t s = 0; s < sizes.size(); ++s) {
    params.push_back(MakeParam("p", sizes[s], 11 * (s + 1)));
    ref_w.emplace_back(params[s].value.data(),
                       params[s].value.data() + sizes[s]);
    ref_v.emplace_back(static_cast<size_t>(sizes[s]), 0.0f);
  }
  Sgd sgd(opts);
  std::vector<ParamTensor*> plist = {&params[0], &params[1]};
  for (int step = 0; step < 12; ++step) {
    for (size_t s = 0; s < params.size(); ++s) FillGrad(&params[s], step);
    auto lr = static_cast<float>(sgd.CurrentLr());  // schedule value pre-step
    sgd.Step(plist);
    for (size_t s = 0; s < params.size(); ++s) {
      std::vector<float> g(params[s].grad.data(),
                           params[s].grad.data() + sizes[s]);
      ReferenceStep(&ref_w[s], g, &ref_v[s],
                    static_cast<float>(opts.momentum),
                    static_cast<float>(opts.weight_decay), lr);
    }
  }
  for (size_t s = 0; s < params.size(); ++s) {
    const float* w = params[s].value.data();
    for (int64_t i = 0; i < sizes[s]; ++i) {
      // FP contraction may differ between translation units; allow ulps.
      ASSERT_NEAR(w[i], ref_w[s][static_cast<size_t>(i)],
                  1e-5f * (1.0f + std::fabs(w[i])))
          << "param " << s << " elem " << i;
    }
  }
}

TEST(SgdFusedTest, MatchesReferenceNoDecay) {
  SgdOptions o;
  o.learning_rate = 0.05;
  o.momentum = 0.9;
  o.weight_decay = 1e-3;
  RunScheduleParity(o);
}

TEST(SgdFusedTest, MatchesReferenceExponentialDecay) {
  SgdOptions o;
  o.learning_rate = 0.1;
  o.momentum = 0.85;
  o.weight_decay = 5e-4;
  o.lr_decay = 0.5;
  o.decay_every_steps = 3;
  o.exponential_decay = true;
  RunScheduleParity(o);
}

TEST(SgdFusedTest, MatchesReferenceLinearDecay) {
  SgdOptions o;
  o.learning_rate = 0.2;
  o.momentum = 0.0;
  o.weight_decay = 0.0;
  o.decay_every_steps = 1;
  o.exponential_decay = false;
  o.total_steps = 10;
  o.min_lr_fraction = 0.1;
  RunScheduleParity(o);
}

TEST(SgdFusedTest, DuplicateParamNamesKeepIndependentVelocity) {
  // Regression: velocity used to be keyed by parameter name, so two layers
  // whose parameters shared a name silently shared (and corrupted) one
  // momentum buffer. Position keying must give each slot its own state.
  const int64_t n = 64;
  ParamTensor a = MakeParam("w", n, 1);
  ParamTensor b = MakeParam("w", n, 2);  // same name, different values
  std::vector<float> ref_wa(a.value.data(), a.value.data() + n);
  std::vector<float> ref_wb(b.value.data(), b.value.data() + n);
  std::vector<float> ref_va(n, 0.0f), ref_vb(n, 0.0f);

  SgdOptions o;
  o.learning_rate = 0.1;
  o.momentum = 0.9;  // nonzero so velocity aliasing would show
  o.weight_decay = 0.0;
  Sgd sgd(o);
  std::vector<ParamTensor*> plist = {&a, &b};
  for (int step = 0; step < 5; ++step) {
    a.grad.Fill(0.5f);
    b.grad.Fill(-0.25f);
    sgd.Step(plist);
    ReferenceStep(&ref_wa, std::vector<float>(n, 0.5f), &ref_va, 0.9f, 0.0f,
                  0.1f);
    ReferenceStep(&ref_wb, std::vector<float>(n, -0.25f), &ref_vb, 0.9f,
                  0.0f, 0.1f);
  }
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(a.value.data()[i], ref_wa[static_cast<size_t>(i)]);
    ASSERT_FLOAT_EQ(b.value.data()[i], ref_wb[static_cast<size_t>(i)]);
  }
}

TEST(SgdFusedTest, ReshapedParamRestartsOnlyItsOwnVelocity) {
  ParamTensor a = MakeParam("a", 16, 1);
  ParamTensor b = MakeParam("b", 16, 2);
  SgdOptions o;
  o.momentum = 0.9;
  o.weight_decay = 0.0;
  o.learning_rate = 0.1;
  Sgd sgd(o);
  std::vector<ParamTensor*> plist = {&a, &b};
  a.grad.Fill(1.0f);
  b.grad.Fill(1.0f);
  sgd.Step(plist);
  sgd.Step(plist);
  float b_before = b.value.data()[0];
  // Warm-start across architectures: param 0 changes shape; its momentum
  // restarts, while param 1 keeps accumulated velocity.
  a.value = Tensor({32});
  a.grad = Tensor({32});
  a.grad.Fill(1.0f);
  b.grad.Fill(0.0f);  // b coasts on momentum only this step
  sgd.Step(plist);
  // v_b was -0.1*(1+0.9+...)… just assert it kept moving without gradient.
  EXPECT_LT(b.value.data()[0], b_before);
  // a's first post-reshape step must look like a fresh first step:
  // v = -lr*g = -0.1, w += v.
  EXPECT_FLOAT_EQ(a.value.data()[0], -0.1f);
}

}  // namespace
}  // namespace rafiki::nn
