// The continuation-based serving path of the HTTP server: handlers that
// park their ResponseWriter and complete it later from another thread.
// Covers pipelined re-ordering under reverse-order completion, in-flight
// concurrency beyond the handler-pool size, drain-while-async-pending,
// dropped-writer recovery, one-shot semantics, and completion after Stop().

#include "net/http_server.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "net/http_client.h"
#include "net/socket.h"

namespace rafiki::net {
namespace {

/// Collects parked writers; handlers stash here and return immediately.
struct WriterStash {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::pair<std::string, HttpServer::ResponseWriter>> writers;

  void Add(const std::string& path, HttpServer::ResponseWriter writer) {
    {
      std::lock_guard<std::mutex> lock(mu);
      writers.emplace_back(path, std::move(writer));
    }
    cv.notify_all();
  }

  bool WaitFor(size_t n, double timeout_s = 10.0) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::duration<double>(timeout_s),
                       [&] { return writers.size() >= n; });
  }
};

/// Reads until `want` responses parsed (or peer close); returns
/// (status, body) pairs in wire order.
std::vector<std::pair<int, std::string>> ReadResponses(int fd, size_t want) {
  std::vector<std::pair<int, std::string>> out;
  std::string buffered;
  HttpResponseParser parser;
  char buf[4096];
  while (out.size() < want) {
    Result<size_t> n = RecvSome(fd, buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    buffered.append(buf, *n);
    for (;;) {
      size_t consumed = parser.Feed(buffered.data(), buffered.size());
      buffered.erase(0, consumed);
      if (!parser.done()) break;
      out.emplace_back(parser.status(), parser.body());
      parser = HttpResponseParser();
      if (buffered.empty()) break;
    }
  }
  return out;
}

TEST(HttpAsyncTest, OutOfOrderCompletionsWriteInRequestOrder) {
  constexpr size_t kPipelined = 8;
  WriterStash stash;
  HttpServerOptions opts;
  opts.num_workers = 1;
  opts.num_handler_threads = 4;
  opts.max_pipeline = kPipelined;
  HttpServer server(
      [&stash](const HttpRequest& request,
               HttpServer::ResponseWriter writer) {
        stash.Add(request.path, std::move(writer));
      },
      opts);
  ASSERT_TRUE(server.Start().ok());

  auto sock = ConnectTcp("127.0.0.1", server.port(), 10.0);
  ASSERT_TRUE(sock.ok());
  std::string wire;
  for (size_t i = 0; i < kPipelined; ++i) {
    wire += "GET /r" + std::to_string(i) + " HTTP/1.1\r\n\r\n";
  }
  ASSERT_TRUE(SendAll(sock->fd(), wire.data(), wire.size()).ok());
  ASSERT_TRUE(stash.WaitFor(kPipelined));

  // Every request is admitted concurrently; nothing is on the wire yet.
  EXPECT_EQ(server.stats().inflight, kPipelined);

  // Complete in REVERSE request order, from this (non-handler) thread.
  {
    std::lock_guard<std::mutex> lock(stash.mu);
    for (size_t i = stash.writers.size(); i-- > 0;) {
      HttpResponse resp;
      resp.body = "answer " + stash.writers[i].first;
      stash.writers[i].second.Complete(resp);
    }
  }

  // Bytes on the wire must be in request order regardless.
  auto responses = ReadResponses(sock->fd(), kPipelined);
  ASSERT_EQ(responses.size(), kPipelined);
  for (size_t i = 0; i < kPipelined; ++i) {
    EXPECT_EQ(responses[i].first, 200);
    EXPECT_EQ(responses[i].second, "answer /r" + std::to_string(i));
  }

  server.Stop();
  HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_total, kPipelined);
  EXPECT_EQ(stats.responses_total, kPipelined);
  EXPECT_EQ(stats.handled, kPipelined);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(HttpAsyncTest, InflightExceedsHandlerThreads) {
  // ONE handler thread, eight parked requests: the continuation path must
  // carry all eight in flight at once — the sync path could never exceed 1.
  constexpr size_t kConcurrent = 8;
  WriterStash stash;
  HttpServerOptions opts;
  opts.num_workers = 2;
  opts.num_handler_threads = 1;
  HttpServer server(
      [&stash](const HttpRequest& request,
               HttpServer::ResponseWriter writer) {
        stash.Add(request.path, std::move(writer));
      },
      opts);
  ASSERT_TRUE(server.Start().ok());

  std::vector<Socket> socks;
  for (size_t i = 0; i < kConcurrent; ++i) {
    auto sock = ConnectTcp("127.0.0.1", server.port(), 10.0);
    ASSERT_TRUE(sock.ok());
    std::string wire = "GET /c" + std::to_string(i) + " HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(SendAll(sock->fd(), wire.data(), wire.size()).ok());
    socks.push_back(std::move(*sock));
  }
  ASSERT_TRUE(stash.WaitFor(kConcurrent));

  // The stash fills when the handler parks the writer, a moment before the
  // handler callback returns — poll until the last one has handed back its
  // pool slot and its request is accounted as parked.
  HttpServerStats mid = server.stats();
  for (int i = 0; i < 2000 && (mid.async_pending != kConcurrent ||
                               mid.handler_busy != 0);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    mid = server.stats();
  }
  EXPECT_EQ(mid.inflight, kConcurrent);
  EXPECT_GE(mid.inflight_peak, kConcurrent);
  // All handlers have returned; the responses are parked asynchronously.
  EXPECT_EQ(mid.async_pending, kConcurrent);
  EXPECT_EQ(mid.handler_busy, 0u);

  {
    std::lock_guard<std::mutex> lock(stash.mu);
    for (auto& [path, writer] : stash.writers) {
      HttpResponse resp;
      resp.body = "done " + path;
      writer.Complete(resp);
    }
  }
  for (size_t i = 0; i < kConcurrent; ++i) {
    auto responses = ReadResponses(socks[i].fd(), 1);
    ASSERT_EQ(responses.size(), 1u) << "connection " << i;
    EXPECT_EQ(responses[0].first, 200);
  }
  server.Stop();
  HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.handled, kConcurrent);
  EXPECT_EQ(stats.async_pending, 0u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(HttpAsyncTest, DrainWaitsForAsyncPendingResponse) {
  WriterStash stash;
  HttpServerOptions opts;
  opts.num_workers = 1;
  opts.drain_timeout_seconds = 10.0;
  HttpServer server(
      [&stash](const HttpRequest& request,
               HttpServer::ResponseWriter writer) {
        stash.Add(request.path, std::move(writer));
      },
      opts);
  ASSERT_TRUE(server.Start().ok());

  auto sock = ConnectTcp("127.0.0.1", server.port(), 10.0);
  ASSERT_TRUE(sock.ok());
  std::string wire = "GET /slow HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(SendAll(sock->fd(), wire.data(), wire.size()).ok());
  ASSERT_TRUE(stash.WaitFor(1));

  // Complete from another thread WHILE Stop() is draining.
  std::thread completer([&stash] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    HttpResponse resp;
    resp.body = "late but delivered";
    std::lock_guard<std::mutex> lock(stash.mu);
    stash.writers[0].second.Complete(resp);
  });
  server.Stop();  // must block until the parked response went out
  completer.join();

  auto responses = ReadResponses(sock->fd(), 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].first, 200);
  EXPECT_EQ(responses[0].second, "late but delivered");
  EXPECT_EQ(server.stats().handled, 1u);
}

TEST(HttpAsyncTest, DroppedWriterAnswers500) {
  HttpServer server(
      [](const HttpRequest&, HttpServer::ResponseWriter) {
        // Writer dropped without completing: the server must answer 500
        // rather than wedge the connection and leak the admission slot.
      });
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  Result<HttpResponse> resp = client.Get("/oops");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 500);
  EXPECT_NE(resp->body.find("dropped"), std::string::npos);

  // The slot was released: the next request is served normally.
  Result<HttpResponse> again = client.Get("/again");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status, 500);
  server.Stop();
  EXPECT_EQ(server.stats().inflight, 0u);
  EXPECT_EQ(server.stats().handled, 2u);
}

TEST(HttpAsyncTest, CompleteIsOneShot) {
  WriterStash stash;
  HttpServerOptions opts;
  opts.num_workers = 1;
  HttpServer server(
      [&stash](const HttpRequest& request,
               HttpServer::ResponseWriter writer) {
        // Keep a copy AND complete inline: the copy's destruction and any
        // further Complete() calls must all be no-ops.
        stash.Add(request.path, writer);
        HttpResponse resp;
        resp.body = "first";
        writer.Complete(resp);
        EXPECT_TRUE(writer.completed());
      },
      opts);
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  Result<HttpResponse> resp = client.Get("/once");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, "first");
  ASSERT_TRUE(stash.WaitFor(1));
  {
    std::lock_guard<std::mutex> lock(stash.mu);
    HttpResponse dup;
    dup.body = "second";
    stash.writers[0].second.Complete(dup);  // ignored
  }
  Result<HttpResponse> next = client.Get("/n");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->body, "first");

  server.Stop();
  EXPECT_EQ(server.stats().handled, 2u);
  EXPECT_EQ(server.stats().responses_total, 2u);
}

TEST(HttpAsyncTest, CompletionAfterStopIsDroppedSafely) {
  WriterStash stash;
  HttpServerOptions opts;
  opts.num_workers = 1;
  opts.drain_timeout_seconds = 0.05;  // force-stop quickly
  auto server = std::make_unique<HttpServer>(
      [&stash](const HttpRequest& request,
               HttpServer::ResponseWriter writer) {
        stash.Add(request.path, std::move(writer));
      },
      opts);
  ASSERT_TRUE(server->Start().ok());

  auto sock = ConnectTcp("127.0.0.1", server->port(), 10.0);
  ASSERT_TRUE(sock.ok());
  std::string wire = "GET /never HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(SendAll(sock->fd(), wire.data(), wire.size()).ok());
  ASSERT_TRUE(stash.WaitFor(1));

  server->Stop();     // drain times out; the connection is force-closed
  server.reset();     // server object fully gone
  HttpResponse resp;  // completing now must be a safe no-op
  resp.body = "into the void";
  std::lock_guard<std::mutex> lock(stash.mu);
  stash.writers[0].second.Complete(resp);
  stash.writers.clear();  // ~WriterState path is safe too
}

}  // namespace
}  // namespace rafiki::net
