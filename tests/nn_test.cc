#include <cmath>
#include <memory>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "nn/layer.h"
#include "nn/loss.h"
#include "nn/net.h"
#include "nn/sgd.h"

namespace rafiki::nn {
namespace {

/// Central-difference gradient check for a scalar loss through a layer
/// stack: perturb each parameter and compare to the analytic gradient.
void CheckParamGradients(Net& net, const Tensor& x,
                         const std::vector<int64_t>& labels,
                         float tolerance) {
  net.ZeroGrad();
  Tensor logits = net.Forward(x, /*train=*/true);
  LossResult loss = SoftmaxCrossEntropy(logits, labels);
  net.Backward(loss.grad);

  const float eps = 1e-3f;
  for (ParamTensor* p : net.Params()) {
    for (int64_t i = 0; i < std::min<int64_t>(p->value.numel(), 8); ++i) {
      float orig = p->value.at(i);
      // Numeric evaluation must match the differentiated function: use
      // train mode (BatchNorm computes a different function at inference;
      // all layers under check are deterministic in train mode).
      p->value.at(i) = orig + eps;
      float up = SoftmaxCrossEntropy(net.Forward(x, true), labels).loss;
      p->value.at(i) = orig - eps;
      float down = SoftmaxCrossEntropy(net.Forward(x, true), labels).loss;
      p->value.at(i) = orig;
      float numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(p->grad.at(i), numeric, tolerance)
          << p->name << "[" << i << "]";
    }
  }
}

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(1);
  Linear layer(2, 2, 0.0f, rng);  // zero weights
  std::vector<ParamTensor*> params = layer.Params();
  params[0]->value = Tensor({2, 2}, {1, 2, 3, 4});  // W
  params[1]->value = Tensor({1, 2}, {10, 20});      // b
  Tensor x({1, 2}, {1, 1});
  Tensor y = layer.Forward(x, false);
  EXPECT_EQ(y.at2(0, 0), 14.0f);  // 1*1 + 1*3 + 10
  EXPECT_EQ(y.at2(0, 1), 26.0f);  // 1*2 + 1*4 + 20
}

TEST(LinearTest, GradientCheck) {
  Rng rng(2);
  Net net;
  net.Add(std::make_unique<Linear>(3, 4, 0.3f, rng));
  Tensor x = Tensor::Randn({5, 3}, rng);
  CheckParamGradients(net, x, {0, 1, 2, 3, 0}, 2e-2f);
}

TEST(MlpTest, GradientCheckThroughReLU) {
  Rng rng(3);
  Net net = MakeMlp({3, 6, 3}, 0.4f, /*dropout=*/0.0f, rng);
  Tensor x = Tensor::Randn({4, 3}, rng);
  CheckParamGradients(net, x, {0, 1, 2, 0}, 2e-2f);
}

TEST(Conv2DTest, GradientCheck) {
  Rng rng(4);
  Net net;
  net.Add(std::make_unique<Conv2D>(2, 3, 3, /*padding=*/1, 0.3f, rng));
  net.Add(std::make_unique<Flatten>());
  Tensor x = Tensor::Randn({2, 2, 4, 4}, rng);
  CheckParamGradients(net, x, {1, 0}, 3e-2f);
}

TEST(Conv2DTest, OutputShapeWithPadding) {
  Rng rng(5);
  Conv2D conv(3, 8, 3, /*padding=*/1, 0.1f, rng);
  Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  Tensor y = conv.Forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 8, 8}));
  Conv2D valid(3, 4, 3, /*padding=*/0, 0.1f, rng);
  EXPECT_EQ(valid.Forward(x, false).shape(), (Shape{2, 4, 6, 6}));
}

TEST(DropoutTest, InferenceIsIdentity) {
  Dropout drop(0.5f, 7);
  Tensor x({1, 100});
  x.Fill(1.0f);
  Tensor y = drop.Forward(x, /*train=*/false);
  EXPECT_EQ(y.Sum(), 100.0f);
}

TEST(DropoutTest, TrainKeepsExpectedScale) {
  Dropout drop(0.5f, 7);
  Tensor x({1, 20000});
  x.Fill(1.0f);
  Tensor y = drop.Forward(x, /*train=*/true);
  // Inverted dropout: E[y] = 1.
  EXPECT_NEAR(y.Mean(), 1.0f, 0.05f);
  // Backward masks the same elements.
  Tensor g = drop.Backward(x);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(g.at(i) == 0.0f, y.at(i) == 0.0f);
  }
}

TEST(FlattenTest, RoundTrips) {
  Flatten flat;
  Rng rng(8);
  Tensor x = Tensor::Randn({2, 3, 4, 5}, rng);
  Tensor y = flat.Forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  Tensor g = flat.Backward(y);
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(LossTest, SoftmaxCrossEntropyKnownValue) {
  // Uniform logits over 4 classes -> loss = log(4).
  Tensor logits({2, 4});
  LossResult r = SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0f), 1e-5f);
  // Gradient rows sum to ~0.
  for (int64_t row = 0; row < 2; ++row) {
    float sum = 0.0f;
    for (int64_t c = 0; c < 4; ++c) sum += r.grad.at2(row, c);
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
}

TEST(LossTest, AccuracyCountsArgmax) {
  Tensor logits({3, 2}, {0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f});
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0, 1, 0}), 1.0);
  EXPECT_NEAR(Accuracy(logits, {1, 1, 0}), 2.0 / 3.0, 1e-9);
}

TEST(LossTest, MeanSquaredError) {
  Tensor pred({2, 1}, {1.0f, 3.0f});
  LossResult r = MeanSquaredError(pred, {0.0f, 1.0f});
  EXPECT_NEAR(r.loss, (1.0f + 4.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(r.grad.at(0), 2.0f * 1.0f / 2.0f, 1e-6f);
  EXPECT_NEAR(r.grad.at(1), 2.0f * 2.0f / 2.0f, 1e-6f);
}

TEST(SgdTest, PlainStepDescends) {
  Rng rng(9);
  Net net = MakeMlp({4, 8, 2}, 0.3f, 0.0f, rng);
  SgdOptions options;
  options.learning_rate = 0.1;
  options.momentum = 0.0;
  options.weight_decay = 0.0;
  Sgd sgd(options);
  Tensor x = Tensor::Randn({16, 4}, rng);
  std::vector<int64_t> labels;
  for (int i = 0; i < 16; ++i) labels.push_back(i % 2);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 60; ++step) {
    net.ZeroGrad();
    LossResult r = SoftmaxCrossEntropy(net.Forward(x, true), labels);
    if (step == 0) first = r.loss;
    last = r.loss;
    net.Backward(r.grad);
    sgd.Step(net.Params());
  }
  EXPECT_LT(last, first * 0.7f) << "SGD failed to reduce loss";
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Rng rng(10);
  Net net;
  net.Add(std::make_unique<Linear>(4, 4, 1.0f, rng));
  SgdOptions options;
  options.learning_rate = 0.1;
  options.momentum = 0.0;
  options.weight_decay = 0.5;
  Sgd sgd(options);
  float before = net.Params()[0]->value.SquaredNorm();
  net.ZeroGrad();  // zero gradient: only decay acts
  sgd.Step(net.Params());
  float after = net.Params()[0]->value.SquaredNorm();
  EXPECT_LT(after, before);
}

TEST(SgdTest, ExponentialLrDecaySchedule) {
  SgdOptions options;
  options.learning_rate = 1.0;
  options.lr_decay = 0.5;
  options.decay_every_steps = 10;
  Sgd sgd(options);
  EXPECT_DOUBLE_EQ(sgd.CurrentLr(), 1.0);
  Net dummy;
  for (int i = 0; i < 10; ++i) sgd.Step(dummy.Params());
  EXPECT_DOUBLE_EQ(sgd.CurrentLr(), 0.5);
  for (int i = 0; i < 10; ++i) sgd.Step(dummy.Params());
  EXPECT_DOUBLE_EQ(sgd.CurrentLr(), 0.25);
}

TEST(SgdTest, ManualLrScale) {
  SgdOptions options;
  options.learning_rate = 0.2;
  Sgd sgd(options);
  sgd.ScaleLr(0.1);
  EXPECT_NEAR(sgd.CurrentLr(), 0.02, 1e-12);
}

TEST(NetTest, StateDictRoundTripsShapeMatched) {
  Rng rng(11);
  Net a = MakeMlp({4, 8, 2}, 0.3f, 0.0f, rng);
  Net b = MakeMlp({4, 8, 2}, 0.3f, 0.0f, rng);
  auto state = a.StateDict();
  int loaded = b.LoadStateShapeMatched(state);
  EXPECT_EQ(loaded, 4);  // 2 layers x (weight, bias)
  Tensor x = Tensor::Randn({3, 4}, rng);
  Tensor ya = a.Forward(x, false);
  Tensor yb = b.Forward(x, false);
  for (int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_EQ(ya.at(i), yb.at(i));
  }
}

TEST(NetTest, ShapeMismatchedLayersAreSkipped) {
  Rng rng(12);
  Net a = MakeMlp({4, 8, 2}, 0.3f, 0.0f, rng);
  Net b = MakeMlp({4, 16, 2}, 0.3f, 0.0f, rng);  // different hidden width
  int loaded = b.LoadStateShapeMatched(a.StateDict());
  // Weights mismatch everywhere (fc0 [4,8] vs [4,16]; fc1 [8,2] vs
  // [16,2]) and so does fc0's bias; only the output bias [1,2] matches —
  // exactly the per-tensor shape matching of §4.2.2.
  EXPECT_EQ(loaded, 1);
}

TEST(NetTest, PartialShapeMatchAcrossArchitectures) {
  // Same first layer, different second: exactly the paper's §4.2.2
  // "ConvNet a's 3rd layer initializes ConvNet b's 3rd layer" scenario.
  Rng rng(13);
  Net a = MakeMlp({4, 8, 2}, 0.3f, 0.0f, rng);
  Net b = MakeMlp({4, 8, 3}, 0.3f, 0.0f, rng);
  int loaded = b.LoadStateShapeMatched(a.StateDict());
  EXPECT_EQ(loaded, 2);  // fc0 weight+bias only
}


TEST(MaxPool2DTest, ForwardPicksWindowMax) {
  MaxPool2D pool(2);
  Tensor x({1, 1, 4, 4}, {1, 2, 5, 3,
                          4, 0, 1, 1,
                          9, 2, 0, 0,
                          1, 1, 0, 7});
  Tensor y = pool.Forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(y.at(0), 4.0f);
  EXPECT_EQ(y.at(1), 5.0f);
  EXPECT_EQ(y.at(2), 9.0f);
  EXPECT_EQ(y.at(3), 7.0f);
}

TEST(MaxPool2DTest, BackwardRoutesToArgmax) {
  MaxPool2D pool(2);
  Tensor x({1, 1, 2, 2}, {3, 1, 2, 0});
  pool.Forward(x, true);
  Tensor g({1, 1, 1, 1}, {5.0f});
  Tensor gi = pool.Backward(g);
  EXPECT_EQ(gi.at(0), 5.0f);  // max was at index 0
  EXPECT_EQ(gi.at(1), 0.0f);
  EXPECT_EQ(gi.at(2), 0.0f);
  EXPECT_EQ(gi.at(3), 0.0f);
}

TEST(MaxPool2DTest, GradientCheckThroughConvPoolStack) {
  Rng rng(14);
  Net net;
  net.Add(std::make_unique<Conv2D>(1, 2, 3, /*padding=*/1, 0.3f, rng));
  net.Add(std::make_unique<MaxPool2D>(2));
  net.Add(std::make_unique<Flatten>());
  Tensor x = Tensor::Randn({2, 1, 4, 4}, rng);
  CheckParamGradients(net, x, {1, 0}, 3e-2f);
}


TEST(BatchNormTest, TrainOutputStandardizedThenAffine) {
  Rng rng(15);
  BatchNorm bn(3);
  Tensor x = Tensor::Randn({64, 3}, rng, 4.0f);
  x.AddInPlace(Tensor::Full({64, 3}, 7.0f));
  Tensor y = bn.Forward(x, /*train=*/true);
  // gamma=1, beta=0 initially: output has ~zero mean, ~unit variance.
  for (int64_t d = 0; d < 3; ++d) {
    double mean = 0.0, var = 0.0;
    for (int64_t i = 0; i < 64; ++i) mean += y.at2(i, d);
    mean /= 64;
    for (int64_t i = 0; i < 64; ++i) {
      var += (y.at2(i, d) - mean) * (y.at2(i, d) - mean);
    }
    var /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, InferenceUsesRunningStats) {
  Rng rng(16);
  BatchNorm bn(2, "bn", /*momentum=*/0.0);  // running stats = last batch
  Tensor x = Tensor::Randn({128, 2}, rng, 2.0f);
  bn.Forward(x, /*train=*/true);
  // Inference on the SAME data now standardizes with those stats.
  Tensor y = bn.Forward(x, /*train=*/false);
  double mean = 0.0;
  for (int64_t i = 0; i < 128; ++i) mean += y.at2(i, 0);
  EXPECT_NEAR(mean / 128, 0.0, 0.05);
}

TEST(BatchNormTest, GradientCheckThroughStack) {
  Rng rng(17);
  Net net;
  net.Add(std::make_unique<Linear>(3, 5, 0.4f, rng));
  net.Add(std::make_unique<BatchNorm>(5));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<Linear>(5, 2, 0.4f, rng));
  Tensor x = Tensor::Randn({6, 3}, rng);
  CheckParamGradients(net, x, {0, 1, 0, 1, 0, 1}, 3e-2f);
}

TEST(BatchNormTest, StabilizesLargeLearningRateTraining) {
  // The practical point: with BN an MLP survives a learning rate that
  // diverges without it (why the paper's tuner explores lr up to 1.0).
  Rng rng(18);
  auto train = [&](bool use_bn) {
    Rng local(19);
    Net net;
    net.Add(std::make_unique<Linear>(8, 16, 0.5f, local));
    if (use_bn) net.Add(std::make_unique<BatchNorm>(16));
    net.Add(std::make_unique<Relu>());
    net.Add(std::make_unique<Linear>(16, 2, 0.5f, local));
    SgdOptions options;
    options.learning_rate = 0.8;
    options.momentum = 0.0;
    Sgd sgd(options);
    Tensor x = Tensor::Randn({32, 8}, rng);
    std::vector<int64_t> labels;
    for (int i = 0; i < 32; ++i) labels.push_back(i % 2);
    float loss = 0.0f;
    for (int step = 0; step < 40; ++step) {
      net.ZeroGrad();
      LossResult r = SoftmaxCrossEntropy(net.Forward(x, true), labels);
      loss = r.loss;
      if (std::isnan(loss) || loss > 50.0f) return loss;  // diverged
      net.Backward(r.grad);
      sgd.Step(net.Params());
    }
    return loss;
  };
  float with_bn = train(true);
  EXPECT_LT(with_bn, 1.0f) << "BN run should remain stable";
}

TEST(NetTest, CloneIsDeepAndIndependent) {
  // Replica dispatchers serve on per-replica net clones; a clone must
  // compute the same function yet share no parameter storage with the
  // original.
  Rng rng(11);
  Net net = MakeMlp({6, 16, 3}, 0.1f, /*dropout=*/0.0f, rng);
  Net clone = net.Clone();
  Tensor x = Tensor::Randn({4, 6}, rng);
  Tensor original_logits = net.Forward(x, /*train=*/false);
  Tensor clone_logits = clone.Forward(x, /*train=*/false);
  ASSERT_EQ(original_logits.numel(), clone_logits.numel());
  for (int64_t i = 0; i < original_logits.numel(); ++i) {
    EXPECT_FLOAT_EQ(original_logits.at(i), clone_logits.at(i));
  }

  // Perturb every original parameter: the clone's output must not move.
  for (ParamTensor* p : net.Params()) {
    for (int64_t i = 0; i < p->value.numel(); ++i) p->value.at(i) += 1.0f;
  }
  Tensor after = clone.Forward(x, /*train=*/false);
  for (int64_t i = 0; i < after.numel(); ++i) {
    EXPECT_FLOAT_EQ(after.at(i), clone_logits.at(i));
  }
}

}  // namespace
}  // namespace rafiki::nn
