// Sharded-vs-serial gradient parity for the data-parallel RealTrainer:
// splitting a minibatch across K replicas and tree-reducing the shard
// gradients must train the same model as the serial pass, up to the
// accumulation-order round-off GEMM is allowed.

#include <cmath>
#include <vector>

#include "data/dataset.h"
#include "gtest/gtest.h"
#include "trainer/real_trainer.h"

namespace rafiki::trainer {
namespace {

tuning::Trial ParityTrial() {
  tuning::Trial t(1);
  t.Set("learning_rate", tuning::KnobValue(0.05));
  t.Set("momentum", tuning::KnobValue(0.9));
  t.Set("weight_decay", tuning::KnobValue(3e-4));
  // Dropout must be off for exact parity: replicas draw independent masks.
  t.Set("dropout", tuning::KnobValue(0.0));
  t.Set("init_std", tuning::KnobValue(0.05));
  t.Set("hidden_units", tuning::KnobValue(static_cast<int64_t>(24)));
  return t;
}

class DataParallelTrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticTaskOptions options;
    options.num_classes = 4;
    options.samples_per_class = 50;
    options.input_dim = 12;
    options.separation = 4.0;
    options.spread = 0.8;
    data::Dataset all = data::MakeSyntheticTask(options);
    Rng rng(5);
    data::DataSplits splits = data::SplitDataset(all, 0.7, 0.3, rng);
    train_ = std::move(splits.train);
    val_ = std::move(splits.validation);
  }

  // A deterministic batch drawn straight from the training set.
  void MakeBatch(int64_t rows, Tensor* x, std::vector<int64_t>* labels) {
    data::Dataset slice = train_.Slice(0, rows);
    *x = slice.x;
    *labels = slice.labels;
  }

  data::Dataset train_;
  data::Dataset val_;
};

TEST_F(DataParallelTrainerTest, ShardedMatchesSerialWithinTolerance) {
  for (int shards : {2, 3, 4}) {
    RealTrainerOptions serial_opts;
    serial_opts.num_shards = 1;
    RealTrainerOptions sharded_opts;
    sharded_opts.num_shards = shards;

    RealTrainer serial(&train_, &val_, serial_opts);
    RealTrainer sharded(&train_, &val_, sharded_opts);
    // Same seed => identical master initialization (replica nets are built
    // after the master, so the master's weight draws line up).
    ASSERT_TRUE(serial.InitRandom(ParityTrial()).ok());
    ASSERT_TRUE(sharded.InitRandom(ParityTrial()).ok());

    Tensor x;
    std::vector<int64_t> labels;
    MakeBatch(31, &x, &labels);  // odd size: shards get uneven rows

    for (int step = 0; step < 5; ++step) {
      float ls = serial.TrainStep(x, labels);
      float lp = sharded.TrainStep(x, labels);
      ASSERT_NEAR(ls, lp, 1e-4f) << "shards=" << shards << " step=" << step;
    }

    auto ps = serial.Checkpoint().params;
    auto pp = sharded.Checkpoint().params;
    ASSERT_EQ(ps.size(), pp.size());
    for (size_t i = 0; i < ps.size(); ++i) {
      ASSERT_EQ(ps[i].first, pp[i].first);
      ASSERT_EQ(ps[i].second.numel(), pp[i].second.numel());
      const float* a = ps[i].second.data();
      const float* b = pp[i].second.data();
      for (int64_t j = 0; j < ps[i].second.numel(); ++j) {
        ASSERT_NEAR(a[j], b[j], 1e-4f * (1.0f + std::fabs(a[j])))
            << "shards=" << shards << " param=" << ps[i].first
            << " elem=" << j;
      }
    }
  }
}

TEST_F(DataParallelTrainerTest, TinyBatchFallsBackToSerial) {
  RealTrainerOptions opts;
  opts.num_shards = 8;
  RealTrainer trainer(&train_, &val_, opts);
  ASSERT_TRUE(trainer.InitRandom(ParityTrial()).ok());
  // Fewer rows than shards must still work (trains serially).
  Tensor x;
  std::vector<int64_t> labels;
  MakeBatch(1, &x, &labels);
  float loss = trainer.TrainStep(x, labels);
  EXPECT_GT(loss, 0.0f);
}

TEST_F(DataParallelTrainerTest, ShardedTrainingLearnsTask) {
  RealTrainerOptions opts;
  opts.num_shards = 4;
  RealTrainer trainer(&train_, &val_, opts);
  ASSERT_TRUE(trainer.InitRandom(ParityTrial()).ok());
  double acc = 0.0;
  for (int e = 0; e < 15; ++e) acc = trainer.TrainEpoch().value();
  EXPECT_GT(acc, 0.8) << "sharded trainer must still learn the task";
}

}  // namespace
}  // namespace rafiki::trainer
