#include "gtest/gtest.h"
#include "sql/query.h"
#include "sql/table.h"

namespace rafiki::sql {
namespace {

/// The §8 case-study schema (Figure 17).
Table MakeFoodLog() {
  Table t("foodlog", {
                         {"user_id", ColumnType::kInteger, false},
                         {"age", ColumnType::kInteger, true},
                         {"location", ColumnType::kText, true},
                         {"time", ColumnType::kText, true},
                         {"image_path", ColumnType::kText, true},
                     });
  struct RowSpec {
    int64_t user;
    int64_t age;
    const char* loc;
    const char* time;
    const char* img;
  };
  for (const RowSpec& r : std::initializer_list<RowSpec>{
           {1, 30, "sg", "t1", "img_pizza"},
           {2, 55, "sg", "t2", "img_laksa"},
           {3, 60, "kl", "t3", "img_laksa"},
           {4, 25, "sg", "t4", "img_pizza"},
           {5, 70, "bj", "t5", "img_rice"},
       }) {
    EXPECT_TRUE(t.Insert(Row{Value{r.user}, Value{r.age},
                             Value{std::string(r.loc)},
                             Value{std::string(r.time)},
                             Value{std::string(r.img)}})
                    .ok());
  }
  return t;
}

TEST(TableTest, SchemaValidation) {
  Table t("x", {{"a", ColumnType::kInteger, true},
                {"b", ColumnType::kText, false}});
  EXPECT_TRUE(t.Insert(Row{Value{int64_t{1}}, Value{std::string("s")}}).ok());
  // Arity mismatch.
  EXPECT_TRUE(t.Insert(Row{Value{int64_t{1}}}).IsInvalidArgument());
  // NULL into NOT NULL.
  EXPECT_TRUE(
      t.Insert(Row{Value{}, Value{std::string("s")}}).IsInvalidArgument());
  // NULL into nullable column is fine.
  EXPECT_TRUE(t.Insert(Row{Value{int64_t{2}}, Value{}}).ok());
  // Type mismatch.
  EXPECT_TRUE(t.Insert(Row{Value{std::string("not int")}, Value{}})
                  .IsInvalidArgument());
  EXPECT_EQ(t.size(), 2u);
}

TEST(TableTest, ColumnIndex) {
  Table t = MakeFoodLog();
  EXPECT_EQ(t.ColumnIndex("age").value(), 1u);
  EXPECT_TRUE(t.ColumnIndex("ghost").status().IsNotFound());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(ValueToString(Value{}), "NULL");
  EXPECT_EQ(ValueToString(Value{int64_t{42}}), "42");
  EXPECT_EQ(ValueToString(Value{3.5}), "3.5");
  EXPECT_EQ(ValueToString(Value{std::string("x")}), "x");
  EXPECT_TRUE(ValueIsNull(Value{}));
  EXPECT_FALSE(ValueIsNull(Value{int64_t{0}}));
}

TEST(QueryTest, SelectWhereProjects) {
  Table t = MakeFoodLog();
  Query q(&t);
  q.Select({.column = "image_path"})
      .Where(ColumnCompare(t, "age", ">", Value{int64_t{50}}));
  auto rs = q.Execute();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 3u);
  EXPECT_EQ(rs->udf_calls, 0u);
}

TEST(QueryTest, ComparatorOps) {
  Table t = MakeFoodLog();
  auto count = [&](const std::string& op, int64_t v) {
    Query q(&t);
    q.Select({.column = "user_id"})
        .Where(ColumnCompare(t, "age", op, Value{v}));
    return q.Execute()->rows.size();
  };
  EXPECT_EQ(count(">", 52), 3u);
  EXPECT_EQ(count(">=", 55), 3u);
  EXPECT_EQ(count("<", 30), 1u);
  EXPECT_EQ(count("<=", 30), 2u);
  EXPECT_EQ(count("=", 60), 1u);
  EXPECT_EQ(count("!=", 60), 4u);
}

TEST(QueryTest, UdfOnlyRunsOnFilteredRows) {
  // The §8 efficiency claim: the UDF is evaluated only on rows surviving
  // the WHERE clause.
  Table t = MakeFoodLog();
  size_t invocations = 0;
  ScalarUdf food_name = [&invocations](const Value& v) {
    ++invocations;
    std::string path = std::get<std::string>(v);
    return Value{path.substr(4)};  // "img_laksa" -> "laksa"
  };
  Query q(&t);
  q.Select({.column = "image_path", .udf = food_name, .alias = "food_name"})
      .Where(ColumnCompare(t, "age", ">", Value{int64_t{52}}));
  auto rs = q.Execute();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 3u);
  EXPECT_EQ(invocations, 3u) << "UDF must not run on filtered-out rows";
  EXPECT_EQ(rs->udf_calls, 3u);
}

TEST(QueryTest, GroupByCountMatchesPaperQuery) {
  // SELECT food_name(image_path) AS name, count(*) FROM foodlog
  // WHERE age > 52 GROUP BY name;
  Table t = MakeFoodLog();
  ScalarUdf food_name = [](const Value& v) {
    return Value{std::get<std::string>(v).substr(4)};
  };
  Query q(&t);
  q.Select({.column = "image_path", .udf = food_name, .alias = "name"})
      .Where(ColumnCompare(t, "age", ">", Value{int64_t{52}}))
      .GroupByCount(0);
  auto rs = q.Execute();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->column_names,
            (std::vector<std::string>{"name", "count(*)"}));
  ASSERT_EQ(rs->rows.size(), 2u);  // laksa x2, rice x1
  EXPECT_EQ(ValueToString(rs->rows[0][0]), "laksa");
  EXPECT_EQ(std::get<int64_t>(rs->rows[0][1]), 2);
  EXPECT_EQ(ValueToString(rs->rows[1][0]), "rice");
  EXPECT_EQ(std::get<int64_t>(rs->rows[1][1]), 1);
}

TEST(QueryTest, EmptySelectRejected) {
  Table t = MakeFoodLog();
  Query q(&t);
  EXPECT_TRUE(q.Execute().status().IsInvalidArgument());
}

TEST(QueryTest, GroupIndexOutOfRangeRejected) {
  Table t = MakeFoodLog();
  Query q(&t);
  q.Select({.column = "age"}).GroupByCount(3);
  EXPECT_TRUE(q.Execute().status().IsInvalidArgument());
}

TEST(QueryTest, ResultSetToString) {
  Table t = MakeFoodLog();
  Query q(&t);
  q.Select({.column = "user_id"})
      .Where(ColumnCompare(t, "age", ">", Value{int64_t{65}}));
  auto rs = q.Execute();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->ToString(), "user_id\n5\n");
}

}  // namespace
}  // namespace rafiki::sql
