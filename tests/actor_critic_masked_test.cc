// Action-masking and update-rule coverage for the actor-critic learner
// (rl_test.cc covers the unmasked basics).

#include "common/rng.h"
#include "gtest/gtest.h"
#include "rl/actor_critic.h"

namespace rafiki::rl {
namespace {

ActorCriticOptions Opts(int state_dim, int actions,
                        PolicyUpdateRule rule = PolicyUpdateRule::kPpoClip) {
  ActorCriticOptions options;
  options.state_dim = state_dim;
  options.num_actions = actions;
  options.hidden = 32;
  options.policy_lr = 5e-3;
  options.value_lr = 5e-3;
  options.update_every = 32;
  options.update_rule = rule;
  options.seed = 77;
  return options;
}

TEST(ActMaskedTest, NeverReturnsInvalidAction) {
  ActorCritic agent(Opts(2, 6));
  std::vector<bool> valid{false, true, false, true, false, false};
  for (int i = 0; i < 500; ++i) {
    int a = agent.ActMasked({0.3, 0.7}, valid);
    ASSERT_GE(a, 0);
    EXPECT_TRUE(valid[static_cast<size_t>(a)]) << "picked masked action " << a;
  }
}

TEST(ActMaskedTest, AllMaskedReturnsMinusOne) {
  ActorCritic agent(Opts(2, 4));
  std::vector<bool> valid{false, false, false, false};
  EXPECT_EQ(agent.ActMasked({0.1, 0.2}, valid), -1);
}

TEST(ActMaskedTest, SingleValidActionAlwaysChosen) {
  ActorCritic agent(Opts(2, 5));
  std::vector<bool> valid{false, false, true, false, false};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(agent.ActMasked({0.1, 0.2}, valid), 2);
  }
}

TEST(ActMaskedTest, GreedyModeIsArgmaxOverValid) {
  ActorCritic agent(Opts(2, 4));
  std::vector<bool> valid{true, true, false, true};
  int a1 = agent.ActMasked({0.5, 0.5}, valid, /*explore=*/false);
  int a2 = agent.ActMasked({0.5, 0.5}, valid, /*explore=*/false);
  EXPECT_EQ(a1, a2);
  EXPECT_TRUE(valid[static_cast<size_t>(a1)]);
}

TEST(ActMaskedTest, LearnsBestAmongValidSubset) {
  // Only arms {1, 3} are ever valid; arm 3 pays. The policy must shift
  // mass onto 3 even though unmasked probabilities include dead arms.
  ActorCritic agent(Opts(2, 4));
  std::vector<bool> valid{false, true, false, true};
  std::vector<double> state{1.0, 0.0};
  for (int t = 0; t < 3000; ++t) {
    int a = agent.ActMasked(state, valid);
    agent.Record(state, a, a == 3 ? 1.0 : 0.0);
  }
  // Compare masked-greedy choice.
  EXPECT_EQ(agent.ActMasked(state, valid, /*explore=*/false), 3);
}

class UpdateRuleTest : public ::testing::TestWithParam<PolicyUpdateRule> {};

TEST_P(UpdateRuleTest, BothRulesSolveContextualBandit) {
  ActorCritic agent(Opts(2, 2, GetParam()));
  Rng rng(3);
  for (int step = 0; step < 12000; ++step) {
    bool ctx = rng.Bernoulli(0.5);
    std::vector<double> state{ctx ? 1.0 : 0.0, ctx ? 0.0 : 1.0};
    int a = agent.Act(state);
    agent.Record(state, a, (a == (ctx ? 1 : 0)) ? 1.0 : -0.2);
  }
  EXPECT_GT(agent.Probabilities({1.0, 0.0})[1], 0.7);
  EXPECT_GT(agent.Probabilities({0.0, 1.0})[0], 0.7);
}

INSTANTIATE_TEST_SUITE_P(Rules, UpdateRuleTest,
                         ::testing::Values(
                             PolicyUpdateRule::kReinforceBaseline,
                             PolicyUpdateRule::kPpoClip));

TEST(PpoClipTest, MultipleEpochsDoNotExplodeProbabilities) {
  // PPO's clip must keep the policy from collapsing to 0/1 within a single
  // update on a strong advantage signal (mixed actions, only one pays).
  ActorCriticOptions options = Opts(2, 2, PolicyUpdateRule::kPpoClip);
  options.update_every = 16;
  options.ppo_epochs = 8;  // aggressive
  ActorCritic agent(options);
  std::vector<double> state{0.5, 0.5};
  double p_before = agent.Probabilities(state)[1];
  for (int i = 0; i < 16; ++i) {
    int action = i % 2;
    agent.Record(state, action, action == 1 ? 1.0 : 0.0);
  }
  double p_after = agent.Probabilities(state)[1];
  EXPECT_GT(p_after, p_before);   // moved toward the rewarded action
  EXPECT_LT(p_after, 0.995);      // but not collapsed in one update
}

}  // namespace
}  // namespace rafiki::rl
