// Cross-cutting edge-case coverage that the per-module suites do not
// exercise: encoding corner cases, NULL semantics, SLO sweeps, and
// numerical boundaries.

#include <cmath>

#include "common/string_util.h"
#include "gtest/gtest.h"
#include "model/profile.h"
#include "serving/greedy_batch.h"
#include "sql/query.h"
#include "storage/serialize.h"
#include "trainer/surrogate.h"
#include "tuning/hyperspace.h"

namespace rafiki {
namespace {

TEST(TrialEncodingEdgeTest, StringValuesWithColonsSurvive) {
  tuning::Trial t(3);
  t.Set("schedule", tuning::KnobValue(std::string("warmup:linear:5")));
  Result<tuning::Trial> back = tuning::Trial::Decode(t.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->GetString("schedule"), "warmup:linear:5");
}

TEST(TrialEncodingEdgeTest, ExtremeDoublesRoundTrip) {
  tuning::Trial t(4);
  t.Set("tiny", tuning::KnobValue(1e-12));
  t.Set("negative", tuning::KnobValue(-0.5));
  t.Set("big_int", tuning::KnobValue(static_cast<int64_t>(1) << 40));
  Result<tuning::Trial> back = tuning::Trial::Decode(t.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(back->GetDouble("tiny"), 1e-12, 1e-18);
  EXPECT_DOUBLE_EQ(back->GetDouble("negative"), -0.5);
  EXPECT_EQ(back->GetInt("big_int"), static_cast<int64_t>(1) << 40);
}

TEST(TrialEncodingEdgeTest, EmptyTrialRoundTrips) {
  tuning::Trial t(9);
  Result<tuning::Trial> back = tuning::Trial::Decode(t.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id(), 9);
  EXPECT_TRUE(back->values().empty());
}

TEST(SqlNullEdgeTest, NullsNeverSatisfyComparisons) {
  sql::Table t("x", {{"a", sql::ColumnType::kInteger, false}});
  ASSERT_TRUE(t.Insert(sql::Row{sql::Value{}}).ok());
  ASSERT_TRUE(t.Insert(sql::Row{sql::Value{int64_t{5}}}).ok());
  for (const char* op : {"<", "<=", ">", ">=", "=", "!="}) {
    sql::Query q(&t);
    q.Select({.column = "a"})
        .Where(sql::ColumnCompare(t, "a", op, sql::Value{int64_t{5}}));
    auto rs = q.Execute();
    ASSERT_TRUE(rs.ok());
    for (const sql::Row& row : rs->rows) {
      EXPECT_FALSE(sql::ValueIsNull(row[0]))
          << "NULL row passed op " << op;
    }
  }
}

TEST(SqlNullEdgeTest, UdfReturningNullGroupsUnderNull) {
  sql::Table t("x", {{"a", sql::ColumnType::kInteger, true}});
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.Insert(sql::Row{sql::Value{i}}).ok());
  }
  sql::ScalarUdf flaky = [](const sql::Value& v) -> sql::Value {
    int64_t x = std::get<int64_t>(v);
    if (x % 2 == 0) return sql::Value{};  // model unavailable
    return sql::Value{std::string("ok")};
  };
  sql::Query q(&t);
  q.Select({.column = "a", .udf = flaky, .alias = "r"}).GroupByCount(0);
  auto rs = q.Execute();
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 2u);  // NULL group + "ok" group
  EXPECT_EQ(sql::ValueToString(rs->rows[0][0]), "NULL");
  EXPECT_EQ(std::get<int64_t>(rs->rows[0][1]), 2);
}

class TauSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(TauSweepTest, GreedyDeadlineRuleConsistentAcrossSlos) {
  // Algorithm 3's flush condition must scale with tau: with a fresh queue
  // of 20 requests, the policy waits when slack exists and flushes when
  // the oldest request is within c(b) + delta of the SLO.
  double tau = GetParam();
  static std::vector<int64_t> batches{16, 32, 48, 64};
  static std::vector<model::ModelProfile> models{
      model::FindProfile("inception_v3").value()};
  serving::GreedyBatchPolicy policy(0);
  serving::ServingObs obs;
  obs.now = 10.0;
  obs.tau = tau;
  obs.batch_sizes = &batches;
  obs.models = &models;
  obs.queue_len = 20;
  obs.busy_remaining = {0.0};

  double c16 = models[0].BatchLatency(16);
  double delta = 0.1 * tau;
  // Just inside the deadline window: must flush.
  obs.queue_waits = {tau - c16 - delta + 1e-6};
  EXPECT_TRUE(policy.Decide(obs).process) << "tau=" << tau;
  // Well outside: must wait (only when slack is meaningful).
  if (tau - c16 - delta > 0.01) {
    obs.queue_waits = {0.0};
    EXPECT_FALSE(policy.Decide(obs).process) << "tau=" << tau;
  }
}

INSTANTIATE_TEST_SUITE_P(Slos, TauSweepTest,
                         ::testing::Values(0.2, 0.56, 1.0, 2.0));

TEST(SurrogateEdgeTest, InvertCurveBoundaries) {
  trainer::SurrogateTrainer t(trainer::SurrogateOptions{});
  tuning::Trial trial(1);
  trial.Set("learning_rate", tuning::KnobValue(0.05));
  ASSERT_TRUE(t.InitRandom(trial).ok());
  // Warm start from an impossible (higher-than-asymptote) donor caps at
  // 98% of the trial's own asymptote rather than looping.
  ps::ModelCheckpoint dream;
  dream.meta.accuracy = 0.999;
  ASSERT_TRUE(t.InitFromCheckpoint(trial, dream).ok());
  double first = t.TrainEpoch().value();
  EXPECT_LE(first, t.asymptote() + 0.05);
  EXPECT_GT(first, 0.5);
}

TEST(SerializeEdgeTest, EmptyTensorRoundTrips) {
  Tensor empty;
  auto bytes = storage::SerializeTensor(empty);
  auto back = storage::DeserializeTensor(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->numel(), 0);
  EXPECT_EQ(back->rank(), 0u);
}

TEST(SerializeEdgeTest, LargeTensorIntegrity) {
  Rng rng(3);
  Tensor big = Tensor::Randn({64, 257}, rng);  // odd size, > 64KB payload
  auto back = storage::DeserializeTensor(storage::SerializeTensor(big));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->SquaredNorm(), big.SquaredNorm());
}

TEST(StrFormatEdgeTest, LongOutputNotTruncated) {
  std::string big(500, 'x');
  std::string out = StrFormat("[%s]", big.c_str());
  EXPECT_EQ(out.size(), 502u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(ProfileEdgeTest, ThroughputMonotoneInBatchForAllModels) {
  // b / c(b) grows with b under the affine latency model (fixed overhead
  // amortizes) — the reason Algorithm 3 prefers the largest batch.
  for (const model::ModelProfile& p : model::ImageNetCatalog()) {
    double prev = 0.0;
    for (int64_t b : {16, 32, 48, 64}) {
      double tp = p.Throughput(b);
      EXPECT_GT(tp, prev) << p.name << " b=" << b;
      prev = tp;
    }
  }
}

TEST(HyperSpaceEdgeTest, SingleCategoryKnobAlwaysThatValue) {
  tuning::HyperSpace space;
  ASSERT_TRUE(space.AddCategoricalKnob("only", {"solo"}).ok());
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(space.Sample(rng)->GetString("only"), "solo");
  }
  auto norm = space.Normalize(*space.Sample(rng));
  ASSERT_TRUE(norm.ok());
  EXPECT_DOUBLE_EQ(norm.value()[0], 0.0);
}

TEST(HyperSpaceEdgeTest, IntKnobCoversFullRangeInclusiveFloor) {
  tuning::HyperSpace space;
  ASSERT_TRUE(
      space.AddRangeKnob("layers", tuning::KnobDtype::kInt, 2, 5).ok());
  Rng rng(6);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(space.Sample(rng)->GetInt("layers"));
  }
  // floor of [2, 5) uniform -> {2, 3, 4}.
  EXPECT_EQ(seen, (std::set<int64_t>{2, 3, 4}));
}

}  // namespace
}  // namespace rafiki
