#include "cluster/frame.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace rafiki::cluster {
namespace {

Message SampleMessage() {
  Message m;
  m.type = MessageType::kReport;
  m.from = "study/s/worker/w0";
  m.trial_id = 42;
  m.performance = 0.875;
  m.num_fields["epochs"] = 7;
  m.num_fields["sim_seconds"] = 12.5;
  m.str_fields["trial"] = "3|lr:f:0.1;momentum:f:0.9";
  m.str_fields["blob"] = std::string("\x00\x01\xff\x7f", 4);  // binary-safe
  return m;
}

std::vector<Frame> DecodeAll(FrameDecoder& decoder) {
  std::vector<Frame> frames;
  while (true) {
    auto next = decoder.Next();
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ok() || !next.value().has_value()) break;
    frames.push_back(std::move(**next));
  }
  return frames;
}

TEST(FrameTest, RoundTripsSingleFrame) {
  std::string wire;
  AppendFrame(FrameType::kMessage, "hello", &wire);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + 5);

  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  std::vector<Frame> frames = DecodeAll(decoder);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kMessage);
  EXPECT_EQ(frames[0].payload, "hello");
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, ReassemblesTornFramesFedByteAtATime) {
  std::string wire;
  AppendFrame(FrameType::kAnnounce, EncodeEndpointList({"a", "b/c"}), &wire);
  AppendFrame(FrameType::kPing, "", &wire);
  AppendFrame(FrameType::kMessage, std::string(1000, 'x'), &wire);

  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (char c : wire) {
    decoder.Feed(&c, 1);
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok());
    if (next.value().has_value()) frames.push_back(std::move(**next));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kAnnounce);
  auto endpoints = DecodeEndpointList(frames[0].payload);
  ASSERT_TRUE(endpoints.ok());
  EXPECT_EQ(endpoints.value(), (std::vector<std::string>{"a", "b/c"}));
  EXPECT_EQ(frames[1].type, FrameType::kPing);
  EXPECT_EQ(frames[2].payload, std::string(1000, 'x'));
}

TEST(FrameTest, TruncatedLengthPrefixNeedsMoreBytes) {
  std::string wire;
  AppendFrame(FrameType::kMessage, "payload", &wire);
  FrameDecoder decoder;
  // Feed only part of the 12-byte header: no frame, no error.
  decoder.Feed(wire.data(), kFrameHeaderBytes - 3);
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next.value().has_value());
  EXPECT_FALSE(decoder.failed());
  // The rest completes the frame.
  decoder.Feed(wire.data() + kFrameHeaderBytes - 3,
               wire.size() - (kFrameHeaderBytes - 3));
  next = decoder.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next.value().has_value());
  EXPECT_EQ((*next.value()).payload, "payload");
}

TEST(FrameTest, BadMagicPoisonsTheStream) {
  std::string wire;
  AppendFrame(FrameType::kPing, "", &wire);
  wire[0] = 'X';
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  auto next = decoder.Next();
  EXPECT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(decoder.failed());
  // Poisoned: even after more valid bytes the error repeats.
  std::string good;
  AppendFrame(FrameType::kPing, "", &good);
  decoder.Feed(good.data(), good.size());
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(FrameTest, UnsupportedVersionIsUnimplemented) {
  std::string wire;
  AppendFrame(FrameType::kPing, "", &wire);
  wire[4] = 9;
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kUnimplemented);
}

TEST(FrameTest, UnknownTypeAndReservedBitsAreInvalid) {
  {
    std::string wire;
    AppendFrame(FrameType::kPing, "", &wire);
    wire[5] = 99;  // unknown frame type
    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    auto next = decoder.Next();
    ASSERT_FALSE(next.ok());
    EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::string wire;
    AppendFrame(FrameType::kPing, "", &wire);
    wire[6] = 1;  // reserved must be zero
    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    auto next = decoder.Next();
    ASSERT_FALSE(next.ok());
    EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(FrameTest, OversizedPayloadIsOutOfRange) {
  std::string wire;
  AppendFrame(FrameType::kMessage, "x", &wire);
  uint32_t huge = static_cast<uint32_t>(kMaxFramePayload) + 1;
  std::memcpy(&wire[8], &huge, sizeof(huge));
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kOutOfRange);
}

TEST(FrameTest, FuzzedHeadersNeverCrash) {
  // Random 12-byte headers plus random tails: every outcome must be a
  // clean frame, a need-more-bytes, or a typed error — never a crash.
  Rng rng(20260808);
  for (int i = 0; i < 2000; ++i) {
    std::string wire(kFrameHeaderBytes + rng.Next64() % 64, '\0');
    for (char& c : wire) c = static_cast<char>(rng.Next64() & 0xff);
    FrameDecoder decoder;
    // Feed in random-sized slices to exercise reassembly.
    size_t pos = 0;
    while (pos < wire.size()) {
      size_t n = 1 + rng.Next64() % 7;
      n = std::min(n, wire.size() - pos);
      decoder.Feed(wire.data() + pos, n);
      pos += n;
      auto next = decoder.Next();
      if (!next.ok()) break;  // poisoned, stop feeding
    }
  }
}

TEST(FrameTest, FuzzedValidStreamWithRandomPayloadsRoundTrips) {
  Rng rng(7);
  std::string wire;
  std::vector<std::string> want;
  for (int i = 0; i < 50; ++i) {
    std::string payload(rng.Next64() % 300, '\0');
    for (char& c : payload) c = static_cast<char>(rng.Next64() & 0xff);
    want.push_back(payload);
    AppendFrame(FrameType::kMessage, payload, &wire);
  }
  FrameDecoder decoder;
  std::vector<Frame> frames;
  size_t pos = 0;
  while (pos < wire.size()) {
    size_t n = std::min<size_t>(1 + rng.Next64() % 17, wire.size() - pos);
    decoder.Feed(wire.data() + pos, n);
    pos += n;
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok());
    if (next.value().has_value()) frames.push_back(std::move(**next));
  }
  std::vector<Frame> rest = DecodeAll(decoder);
  frames.insert(frames.end(), std::make_move_iterator(rest.begin()),
                std::make_move_iterator(rest.end()));
  ASSERT_EQ(frames.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(frames[i].payload, want[i]);
  }
}

TEST(FrameTest, EnvelopeRoundTripsEveryField) {
  Message m = SampleMessage();
  std::string payload = EncodeEnvelope("study/s/master", m);
  auto decoded = DecodeEnvelope(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().first, "study/s/master");
  const Message& got = decoded.value().second;
  EXPECT_EQ(got.type, m.type);
  EXPECT_EQ(got.from, m.from);
  EXPECT_EQ(got.trial_id, m.trial_id);
  EXPECT_DOUBLE_EQ(got.performance, m.performance);
  EXPECT_EQ(got.num_fields, m.num_fields);
  EXPECT_EQ(got.str_fields, m.str_fields);
}

TEST(FrameTest, EnvelopeRejectsTruncationAndTrailingGarbage) {
  std::string payload = EncodeEnvelope("to", SampleMessage());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto decoded = DecodeEnvelope(std::string_view(payload.data(), cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
  auto trailing = DecodeEnvelope(payload + "x");
  EXPECT_FALSE(trailing.ok());
}

TEST(FrameTest, EnvelopeFuzzNeverCrashes) {
  Rng rng(99);
  std::string payload = EncodeEnvelope("to", SampleMessage());
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = payload;
    int flips = 1 + static_cast<int>(rng.Next64() % 4);
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Next64() % mutated.size()] ^=
          static_cast<char>(1 + rng.Next64() % 255);
    }
    (void)DecodeEnvelope(mutated);  // any Status is fine; crashing is not
  }
}

TEST(FrameTest, EndpointListRejectsHostileCount) {
  // A count claiming more entries than bytes remain must fail instead of
  // attempting a huge allocation.
  std::string payload = EncodeEndpointList({"a"});
  uint32_t hostile = 0x7fffffffu;
  std::memcpy(payload.data(), &hostile, sizeof(hostile));
  auto decoded = DecodeEndpointList(payload);
  EXPECT_FALSE(decoded.ok());
}

TEST(FrameTest, EndpointListRoundTripsEmptyAndMany) {
  EXPECT_TRUE(DecodeEndpointList(EncodeEndpointList({})).value().empty());
  std::vector<std::string> many;
  for (int i = 0; i < 200; ++i) many.push_back("endpoint/" + std::to_string(i));
  EXPECT_EQ(DecodeEndpointList(EncodeEndpointList(many)).value(), many);
}

}  // namespace
}  // namespace rafiki::cluster
