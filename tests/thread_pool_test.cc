// ThreadPool behaviour: range coverage, grain handling, nested-call safety,
// exception propagation, and clean shutdown.

#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace rafiki {
namespace {

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  for (int64_t range : {0, 1, 3, 7, 100, 1001}) {
    for (int64_t grain : {1, 4, 64, 5000}) {
      std::vector<std::atomic<int>> hits(static_cast<size_t>(range));
      pool.ParallelFor(0, range, grain, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
          hits[static_cast<size_t>(i)].fetch_add(1);
      });
      for (int64_t i = 0; i < range; ++i)
        EXPECT_EQ(1, hits[static_cast<size_t>(i)].load())
            << "i=" << i << " range=" << range << " grain=" << grain;
    }
  }
}

TEST(ThreadPoolTest, NonZeroBeginIsRespected) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10, 50, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), (10 + 49) * 40 / 2);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 10, 1, [&](int64_t b, int64_t e) {
    calls.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(10, calls.load());
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      // Nested call from inside a pool task must complete inline.
      pool.ParallelFor(0, 16, 1, [&](int64_t ib, int64_t ie) {
        total.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(8 * 16, total.load());
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](int64_t b, int64_t e) {
                         if (b == 0) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must still be fully usable after a throwing run.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 100, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(100, sum.load());
}

TEST(ThreadPoolTest, ShutdownWithoutWorkIsClean) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), std::max(1, threads));
  }
  // Destruction happens at scope exit; reaching here without hanging is the
  // assertion.
  SUCCEED();
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int64_t> sum{0};
  ThreadPool::Global().ParallelFor(0, 64, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 63 * 64 / 2);
  EXPECT_GE(ThreadPool::Global().num_threads(), 1);
}

}  // namespace
}  // namespace rafiki
