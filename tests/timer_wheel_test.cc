#include "net/timer_wheel.h"

#include <cstdint>
#include <limits>
#include <vector>

#include "gtest/gtest.h"

namespace rafiki::net {
namespace {

/// Drives `wheel` from its current time to `until` in `step`-second hops,
/// the way a live loop would observe time between wakeups.
void AdvanceTo(TimerWheel& wheel, double until, double step = 1e-3) {
  double t = wheel.now();
  while (t < until) {
    t = std::min(t + step, until);
    wheel.Advance(t);
  }
}

TEST(TimerWheelTest, FiresInDeadlineOrder) {
  TimerWheel wheel;
  std::vector<int> order;
  wheel.Schedule(0.030, [&] { order.push_back(3); });
  wheel.Schedule(0.010, [&] { order.push_back(1); });
  wheel.Schedule(0.020, [&] { order.push_back(2); });
  wheel.Schedule(0.040, [&] { order.push_back(4); });
  AdvanceTo(wheel, 0.050);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheelTest, DeadlineAccuracyWithinTenMilliseconds) {
  // The acceptance bar for every deadline in the system: a wheel timer
  // fires within 10 ms of its scheduled time (with the default 1 ms tick
  // it is in fact exact to one tick).
  TimerWheel wheel;
  const double kDeadlines[] = {0.007, 0.0503, 0.123, 0.9991, 3.456};
  for (double deadline : kDeadlines) {
    double fired_at = -1.0;
    wheel.ScheduleAt(deadline, [&] { fired_at = wheel.now(); });
    AdvanceTo(wheel, deadline + 0.020);
    ASSERT_GE(fired_at, 0.0) << "timer for " << deadline << " never fired";
    EXPECT_GE(fired_at, deadline - 1e-9);
    EXPECT_LE(fired_at - deadline, 0.010)
        << "timer for " << deadline << " fired at " << fired_at;
  }
}

TEST(TimerWheelTest, CancelPreventsFiring) {
  TimerWheel wheel;
  bool fired = false;
  TimerId id = wheel.Schedule(0.010, [&] { fired = true; });
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_TRUE(wheel.Cancel(id));
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_FALSE(wheel.Cancel(id));  // already gone
  AdvanceTo(wheel, 0.050);
  EXPECT_FALSE(fired);
}

TEST(TimerWheelTest, CancelOtherTimerFromCallback) {
  TimerWheel wheel;
  bool second_fired = false;
  TimerId second = 0;
  // Same tick; slots pop FIFO, so the canceller (scheduled first) runs
  // first and cancels its sibling while both sit in the dispatch batch.
  wheel.Schedule(0.010, [&] { EXPECT_TRUE(wheel.Cancel(second)); });
  second = wheel.Schedule(0.010, [&] { second_fired = true; });
  AdvanceTo(wheel, 0.050);
  EXPECT_FALSE(second_fired);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheelTest, PeriodicCancelsItselfFromCallback) {
  TimerWheel wheel;
  int fires = 0;
  TimerId id = 0;
  id = wheel.SchedulePeriodic(0.010, [&] {
    if (++fires == 3) wheel.Cancel(id);
  });
  AdvanceTo(wheel, 0.200);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheelTest, PeriodicDoesNotDrift) {
  // Re-armed from the scheduled deadline, not from the observed fire
  // time: 10 seconds of 10 ms periods is exactly 1000 fires even when
  // time is observed in coarse, misaligned hops.
  TimerWheel wheel;
  int fires = 0;
  wheel.SchedulePeriodic(0.010, [&] { ++fires; });
  AdvanceTo(wheel, 10.0, /*step=*/0.0037);
  EXPECT_EQ(fires, 1000);
}

TEST(TimerWheelTest, PeriodicFirstFireAtInterval) {
  TimerWheel wheel;
  double fired_at = -1.0;
  wheel.SchedulePeriodic(0.025, [&] {
    if (fired_at < 0) fired_at = wheel.now();
  });
  AdvanceTo(wheel, 0.030);
  EXPECT_NEAR(fired_at, 0.025, 0.002);
}

TEST(TimerWheelTest, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel;
  AdvanceTo(wheel, 1.0);
  bool fired = false;
  wheel.ScheduleAt(0.5, [&] { fired = true; });  // already past
  // Clamped to the next tick: crossing any tick boundary fires it.
  wheel.Advance(1.005);
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, CascadeBoundaries) {
  // Deadlines straddling every level boundary of the 256-slot hierarchy
  // (ticks 255/256/257, 65535/65536/65537, 2^24 +/- 1) must fire at their
  // exact tick, which requires correct cascading between levels.
  const uint64_t kBoundaryTicks[] = {1,       2,        255,      256,
                                     257,     511,      513,      65535,
                                     65536,   65537,    (1u << 24) - 1,
                                     1u << 24, (1u << 24) + 1};
  for (uint64_t ticks : kBoundaryTicks) {
    TimerWheel wheel;  // 1 ms tick
    double deadline = static_cast<double>(ticks) * 1e-3;
    double fired_at = -1.0;
    wheel.ScheduleAt(deadline, [&] { fired_at = wheel.now(); });
    // Jump straight to just before the deadline, then cross it: Advance
    // must cascade, not orphan, the node.
    if (deadline > 0.002) wheel.Advance(deadline - 0.002);
    EXPECT_LT(fired_at, 0.0) << "tick " << ticks << " fired early";
    AdvanceTo(wheel, deadline + 0.002);
    ASSERT_GE(fired_at, 0.0) << "tick " << ticks << " never fired";
    EXPECT_NEAR(fired_at, deadline, 1.5e-3) << "tick " << ticks;
  }
}

TEST(TimerWheelTest, ManyTimersAcrossLevels) {
  TimerWheel wheel;
  int fired = 0;
  const int kCount = 500;
  for (int i = 1; i <= kCount; ++i) {
    // Spread across all levels: up to 500 * 0.07 = 35 s (level 2 range).
    wheel.Schedule(0.07 * i, [&] { ++fired; });
  }
  EXPECT_EQ(wheel.size(), static_cast<size_t>(kCount));
  AdvanceTo(wheel, 0.07 * kCount + 0.01, /*step=*/0.009);
  EXPECT_EQ(fired, kCount);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheelTest, NextDeadlineTracksEarliestTimer) {
  TimerWheel wheel;
  EXPECT_EQ(wheel.NextDeadline(), std::numeric_limits<double>::infinity());
  TimerId early = wheel.Schedule(0.010, [] {});
  wheel.Schedule(0.500, [] {});
  EXPECT_NEAR(wheel.NextDeadline(), 0.010, 1.5e-3);
  EXPECT_TRUE(wheel.Cancel(early));
  EXPECT_NEAR(wheel.NextDeadline(), 0.500, 1.5e-3);
  AdvanceTo(wheel, 0.600);
  EXPECT_EQ(wheel.NextDeadline(), std::numeric_limits<double>::infinity());
}

TEST(TimerWheelTest, ScheduleFromCallbackChains) {
  TimerWheel wheel;
  std::vector<double> fires;
  std::function<void()> chain = [&] {
    fires.push_back(wheel.now());
    if (fires.size() < 5) wheel.Schedule(0.010, chain);
  };
  wheel.Schedule(0.010, chain);
  AdvanceTo(wheel, 0.100);
  ASSERT_EQ(fires.size(), 5u);
  // Each hop re-quantizes (deadlines round UP to a tick), so hop k may
  // lag the ideal 10 ms grid by up to k ticks — but never run early.
  for (size_t i = 0; i < fires.size(); ++i) {
    double ideal = 0.010 * static_cast<double>(i + 1);
    EXPECT_GE(fires[i], ideal - 1e-9);
    EXPECT_LE(fires[i] - ideal, 1e-3 * static_cast<double>(i + 2));
  }
}

}  // namespace
}  // namespace rafiki::net
