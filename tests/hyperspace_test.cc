#include <set>

#include "gtest/gtest.h"
#include "tuning/hyperspace.h"

namespace rafiki::tuning {
namespace {

TEST(KnobValueTest, TypedAccessors) {
  KnobValue d(0.5);
  EXPECT_TRUE(d.is_double());
  EXPECT_DOUBLE_EQ(d.AsDouble(), 0.5);
  KnobValue i(static_cast<int64_t>(7));
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(i.AsInt(), 7);
  EXPECT_DOUBLE_EQ(i.AsDouble(), 7.0);
  KnobValue s(std::string("rbf"));
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(s.AsString(), "rbf");
  EXPECT_EQ(s.ToString(), "rbf");
}

TEST(TrialTest, EncodeDecodeRoundTrip) {
  Trial t(42);
  t.Set("learning_rate", KnobValue(0.03125));
  t.Set("layers", KnobValue(static_cast<int64_t>(8)));
  t.Set("kernel", KnobValue(std::string("poly")));
  Result<Trial> back = Trial::Decode(t.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id(), 42);
  EXPECT_DOUBLE_EQ(back->GetDouble("learning_rate"), 0.03125);
  EXPECT_EQ(back->GetInt("layers"), 8);
  EXPECT_EQ(back->GetString("kernel"), "poly");
}

TEST(TrialTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Trial::Decode("no-separator").ok());
  EXPECT_FALSE(Trial::Decode("1|bad_field").ok());
  EXPECT_FALSE(Trial::Decode("1|x:q:1").ok());
}

TEST(TrialTest, FallbacksForMissingKnobs) {
  Trial t;
  EXPECT_DOUBLE_EQ(t.GetDouble("nope", 1.5), 1.5);
  EXPECT_EQ(t.GetInt("nope", 3), 3);
  EXPECT_EQ(t.GetString("nope", "d"), "d");
}

TEST(HyperSpaceTest, RejectsBadKnobDeclarations) {
  HyperSpace space;
  EXPECT_TRUE(space.AddRangeKnob("", KnobDtype::kFloat, 0, 1)
                  .IsInvalidArgument());
  EXPECT_TRUE(space.AddRangeKnob("a", KnobDtype::kFloat, 1.0, 1.0)
                  .IsInvalidArgument());
  EXPECT_TRUE(space.AddRangeKnob("a", KnobDtype::kFloat, 0.0, 1.0,
                                 /*log_scale=*/true)
                  .IsInvalidArgument());
  EXPECT_TRUE(space.AddRangeKnob("a", KnobDtype::kString, 0, 1)
                  .IsInvalidArgument());
  ASSERT_TRUE(space.AddRangeKnob("a", KnobDtype::kFloat, 0, 1).ok());
  EXPECT_EQ(space.AddRangeKnob("a", KnobDtype::kFloat, 0, 1).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(space.AddCategoricalKnob("c", {}).IsInvalidArgument());
  EXPECT_TRUE(space.AddRangeKnob("self", KnobDtype::kFloat, 0, 1, false,
                                 {"self"})
                  .IsInvalidArgument());
}

TEST(HyperSpaceTest, SampleRespectsDomains) {
  HyperSpace space;
  ASSERT_TRUE(space.AddRangeKnob("lr", KnobDtype::kFloat, 1e-4, 1.0,
                                 /*log_scale=*/true)
                  .ok());
  ASSERT_TRUE(space.AddRangeKnob("layers", KnobDtype::kInt, 2, 10).ok());
  ASSERT_TRUE(space.AddCategoricalKnob("kernel", {"linear", "rbf", "poly"})
                  .ok());
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Result<Trial> t = space.Sample(rng);
    ASSERT_TRUE(t.ok());
    EXPECT_TRUE(space.Validate(t.value()).ok())
        << t->DebugString();
    EXPECT_GE(t->GetInt("layers"), 2);
    EXPECT_LE(t->GetInt("layers"), 10);
  }
}

TEST(HyperSpaceTest, LogScaleCoversDecades) {
  HyperSpace space;
  ASSERT_TRUE(space.AddRangeKnob("lr", KnobDtype::kFloat, 1e-4, 1.0,
                                 /*log_scale=*/true)
                  .ok());
  Rng rng(6);
  int tiny = 0;
  for (int i = 0; i < 1000; ++i) {
    double lr = space.Sample(rng)->GetDouble("lr");
    if (lr < 1e-2) ++tiny;
  }
  // Log-uniform: half the draws land below 1e-2 (the log-midpoint).
  EXPECT_GT(tiny, 400);
  EXPECT_LT(tiny, 600);
}

TEST(HyperSpaceTest, DependsOrderingAndHooks) {
  // The paper's example (§4.2.1): lr decay must be generated after the
  // learning rate, with a post hook adjusting it.
  HyperSpace space;
  // Declare decay FIRST so only dependency ordering can save us.
  ASSERT_TRUE(space
                  .AddRangeKnob("lr_decay", KnobDtype::kFloat, 0.0, 1.0,
                                false, {"learning_rate"}, nullptr,
                                [](Trial* t) {
                                  if (t->GetDouble("learning_rate") > 0.1) {
                                    t->Set("lr_decay", KnobValue(0.9));
                                  }
                                })
                  .ok());
  ASSERT_TRUE(space.AddRangeKnob("learning_rate", KnobDtype::kFloat, 0.0,
                                 1.0)
                  .ok());
  auto order = space.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order.value()[0]->name, "learning_rate");
  EXPECT_EQ(order.value()[1]->name, "lr_decay");

  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    Trial t = space.Sample(rng).value();
    if (t.GetDouble("learning_rate") > 0.1) {
      EXPECT_DOUBLE_EQ(t.GetDouble("lr_decay"), 0.9);
    }
  }
}

TEST(HyperSpaceTest, DependencyCycleDetected) {
  HyperSpace space;
  ASSERT_TRUE(
      space.AddRangeKnob("a", KnobDtype::kFloat, 0, 1, false, {"b"}).ok());
  ASSERT_TRUE(
      space.AddRangeKnob("b", KnobDtype::kFloat, 0, 1, false, {"a"}).ok());
  EXPECT_EQ(space.TopologicalOrder().status().code(),
            StatusCode::kFailedPrecondition);
  Rng rng(8);
  EXPECT_FALSE(space.Sample(rng).ok());
}

TEST(HyperSpaceTest, MissingDependencyDetected) {
  HyperSpace space;
  ASSERT_TRUE(space.AddRangeKnob("a", KnobDtype::kFloat, 0, 1, false,
                                 {"ghost"})
                  .ok());
  EXPECT_EQ(space.TopologicalOrder().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(HyperSpaceTest, RandomDagsAlwaysTopologicallyOrdered) {
  // Property test: random DAGs (edges only from earlier to later knobs)
  // must always produce a valid topological order.
  Rng rng(9);
  for (int round = 0; round < 30; ++round) {
    HyperSpace space;
    int n = static_cast<int>(rng.UniformInt(2, 8));
    std::vector<std::string> names;
    for (int i = 0; i < n; ++i) {
      names.push_back("k" + std::to_string(i));
      std::vector<std::string> deps;
      for (int j = 0; j < i; ++j) {
        if (rng.Bernoulli(0.4)) deps.push_back(names[static_cast<size_t>(j)]);
      }
      ASSERT_TRUE(space.AddRangeKnob(names.back(), KnobDtype::kFloat, 0, 1,
                                     false, deps)
                      .ok());
    }
    auto order = space.TopologicalOrder();
    ASSERT_TRUE(order.ok());
    // Every knob appears after its dependencies.
    std::map<std::string, size_t> pos;
    for (size_t i = 0; i < order->size(); ++i) {
      pos[(*order)[i]->name] = i;
    }
    for (const Knob* k : order.value()) {
      for (const std::string& dep : k->depends) {
        EXPECT_LT(pos[dep], pos[k->name]);
      }
    }
  }
}

TEST(HyperSpaceTest, NormalizeDenormalizeRoundTrip) {
  HyperSpace space;
  ASSERT_TRUE(space.AddRangeKnob("lr", KnobDtype::kFloat, 1e-4, 1.0,
                                 /*log_scale=*/true)
                  .ok());
  ASSERT_TRUE(space.AddRangeKnob("mom", KnobDtype::kFloat, 0.0, 1.0).ok());
  ASSERT_TRUE(space.AddCategoricalKnob("whiten", {"pca", "zca"}).ok());
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    Trial t = space.Sample(rng).value();
    auto point = space.Normalize(t);
    ASSERT_TRUE(point.ok());
    for (double u : point.value()) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
    Trial back = space.Denormalize(point.value()).value();
    EXPECT_NEAR(back.GetDouble("lr"), t.GetDouble("lr"),
                t.GetDouble("lr") * 1e-6);
    EXPECT_NEAR(back.GetDouble("mom"), t.GetDouble("mom"), 1e-9);
    EXPECT_EQ(back.GetString("whiten"), t.GetString("whiten"));
  }
}

TEST(HyperSpaceTest, ValidateFlagsOutOfDomain) {
  HyperSpace space;
  ASSERT_TRUE(space.AddRangeKnob("lr", KnobDtype::kFloat, 0.0, 1.0).ok());
  ASSERT_TRUE(space.AddCategoricalKnob("k", {"a", "b"}).ok());
  Trial t;
  t.Set("lr", KnobValue(0.5));
  t.Set("k", KnobValue(std::string("c")));
  EXPECT_EQ(space.Validate(t).code(), StatusCode::kOutOfRange);
  t.Set("k", KnobValue(std::string("a")));
  EXPECT_TRUE(space.Validate(t).ok());
  t.Set("lr", KnobValue(2.0));
  EXPECT_EQ(space.Validate(t).code(), StatusCode::kOutOfRange);
  Trial incomplete;
  EXPECT_TRUE(space.Validate(incomplete).IsInvalidArgument());
}

TEST(HyperSpaceTest, Table1StyleSpaceBuilds) {
  // The full Table 1 shape: preprocessing, architecture, optimization.
  HyperSpace space;
  ASSERT_TRUE(
      space.AddRangeKnob("rotation", KnobDtype::kFloat, 0.0, 30.0).ok());
  ASSERT_TRUE(space.AddRangeKnob("crop", KnobDtype::kInt, 0, 32).ok());
  ASSERT_TRUE(space.AddCategoricalKnob("whitening", {"PCA", "ZCA"}).ok());
  ASSERT_TRUE(space.AddRangeKnob("num_layers", KnobDtype::kInt, 1, 20).ok());
  ASSERT_TRUE(
      space.AddCategoricalKnob("kernel", {"Linear", "RBF", "Poly"}).ok());
  ASSERT_TRUE(space.AddRangeKnob("learning_rate", KnobDtype::kFloat, 1e-5,
                                 1.0, true)
                  .ok());
  ASSERT_TRUE(space.AddRangeKnob("weight_decay", KnobDtype::kFloat, 1e-6,
                                 1e-1, true)
                  .ok());
  ASSERT_TRUE(
      space.AddRangeKnob("momentum", KnobDtype::kFloat, 0.0, 1.0).ok());
  EXPECT_EQ(space.num_knobs(), 8u);
  Rng rng(11);
  Trial t = space.Sample(rng).value();
  EXPECT_TRUE(space.Validate(t).ok());
}

}  // namespace
}  // namespace rafiki::tuning
