#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "gtest/gtest.h"
#include "net/http_client.h"
#include "net/socket.h"

namespace rafiki::net {
namespace {

using StatusCode = rafiki::StatusCode;

double Elapsed(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

TEST(DeadlineTest, ZeroAndNegativeMeanNoDeadline) {
  EXPECT_TRUE(Deadline().infinite());
  EXPECT_TRUE(Deadline::After(0.0).infinite());
  EXPECT_TRUE(Deadline::After(-1.0).infinite());
  EXPECT_EQ(Deadline().remaining_ms(), -1);
  EXPECT_FALSE(Deadline().expired());
}

TEST(DeadlineTest, ExpiresAndClampsRemaining) {
  Deadline d = Deadline::After(0.02);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0);
}

TEST(DeadlineTest, WaitReadableTimesOutAtDeadline) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  auto start = std::chrono::steady_clock::now();
  Status s = WaitReadable(fds[0], Deadline::After(0.1));
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.message();
  EXPECT_GE(Elapsed(start), 0.09);
  EXPECT_LT(Elapsed(start), 2.0);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(DeadlineTest, WaitReadableReturnsOkWhenDataArrives) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  char byte = 'x';
  ASSERT_EQ(::send(fds[1], &byte, 1, 0), 1);
  EXPECT_TRUE(WaitReadable(fds[0], Deadline::After(1.0)).ok());
  // An empty socket buffer is immediately writable.
  EXPECT_TRUE(WaitWritable(fds[0], Deadline::After(1.0)).ok());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(DeadlineTest, ConnectTcpWithTimeoutStillConnects) {
  uint16_t port = 0;
  auto listener = ListenTcp(0, 8, &port);
  ASSERT_TRUE(listener.ok()) << listener.status().message();
  auto sock = ConnectTcp("127.0.0.1", port, 0.5);
  ASSERT_TRUE(sock.ok()) << sock.status().message();
  EXPECT_TRUE(sock->valid());
}

TEST(DeadlineTest, HttpClientReadDeadlineExceededOnSilentServer) {
  // The listener's backlog completes the TCP handshake but nothing ever
  // accepts or answers: the client's whole-response deadline must fire
  // instead of hanging forever.
  uint16_t port = 0;
  auto listener = ListenTcp(0, 8, &port);
  ASSERT_TRUE(listener.ok()) << listener.status().message();

  HttpClient client("127.0.0.1", port, /*timeout_seconds=*/0.3);
  auto start = std::chrono::steady_clock::now();
  Result<int> status = client.RequestView("GET", "/never-answered");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kDeadlineExceeded)
      << status.status().message();
  // One deadline for the whole request — no doubled retry on timeout.
  EXPECT_GE(Elapsed(start), 0.25);
  EXPECT_LT(Elapsed(start), 2.0);
  EXPECT_FALSE(client.connected());  // half-dead connection was dropped
}

}  // namespace
}  // namespace rafiki::net
