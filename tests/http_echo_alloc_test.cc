// Proves the tentpole zero-allocation property of the HTTP data plane:
// once one warmup pass has sized every pool — per-worker ResponseSlot
// arenas, the parser's string capacities, the handler-pool ring, the
// mailbox scratch vectors, the WriterState free list, and the client's
// wire/body buffers — a steady-state keep-alive echo round trip performs
// no heap allocations at all, on the server side or the client side.
//
// The proof is the same global operator new/delete hook as
// train_step_alloc_test.cc: allocations are counted while a flag is armed,
// and the armed window covers hundreds of complete request/response
// cycles through real sockets, the epoll loop, the handler pool, and the
// scatter-gather flush.

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "gtest/gtest.h"
#include "net/http_client.h"
#include "net/http_server.h"

namespace {

std::atomic<long> g_allocs{0};
std::atomic<bool> g_armed{false};

void CountAlloc() {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void* operator new(std::size_t size) {
  CountAlloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  CountAlloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rafiki::net {
namespace {

TEST(HttpEchoAllocTest, SteadyStateKeepAliveEchoIsAllocationFree) {
  HttpServerOptions opts;
  opts.num_workers = 1;
  opts.num_handler_threads = 1;
  opts.max_inflight = 64;
  // Run-to-completion: parse, handler, serialize, and flush all happen on
  // the one worker thread, so slot recycling is synchronous and the
  // zero-allocation property is deterministic. (The handler-pool path is
  // also allocation-free at steady state, but a scheduler preemption
  // between a completion and the handler's hold release can strand the
  // slot in the `returned` mailbox for a beat and force a fresh arena —
  // a benign race that would make this assertion flaky.)
  opts.inline_handlers = true;
  // Null handler: echo the request body from the pooled slot, in place.
  HttpServer server(
      HttpServer::AsyncHandler(
          [](const HttpRequest& request, HttpServer::ResponseWriter writer) {
            HttpResponse& out = writer.response();
            out.status = 200;
            out.body.assign(request.body);
            writer.Complete(out);
          }),
      opts);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  const std::string body = "0,1,0,0,0,1,0,0";

  // Warmup: sizes every buffer on the path. A few hundred iterations also
  // let amortized growers (mailbox vectors, rings) reach their plateau.
  for (int i = 0; i < 200; ++i) {
    Result<int> status = client.RequestView("POST", "/echo", body);
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    ASSERT_EQ(*status, 200);
    ASSERT_EQ(client.body(), body);
  }

  g_allocs.store(0);
  g_armed.store(true);
  int bad = 0;
  for (int i = 0; i < 400; ++i) {
    Result<int> status = client.RequestView("POST", "/echo", body);
    if (!status.ok() || *status != 200 || client.body() != body) ++bad;
  }
  g_armed.store(false);
  long allocs = g_allocs.load();

  EXPECT_EQ(bad, 0);
  EXPECT_EQ(allocs, 0)
      << "steady-state keep-alive echo allocated on the hot path";
  server.Stop();
  HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_total, 600u);
  EXPECT_EQ(stats.responses_total, 600u);
  EXPECT_EQ(stats.handled, 600u);
}

}  // namespace
}  // namespace rafiki::net
