#include "data/dataset.h"
#include "gtest/gtest.h"
#include "trainer/real_trainer.h"
#include "trainer/surrogate.h"

namespace rafiki::trainer {
namespace {

tuning::Trial GoodTrial() {
  tuning::Trial t(1);
  t.Set("learning_rate", tuning::KnobValue(0.05));
  t.Set("momentum", tuning::KnobValue(0.9));
  t.Set("weight_decay", tuning::KnobValue(3e-4));
  t.Set("dropout", tuning::KnobValue(0.3));
  t.Set("init_std", tuning::KnobValue(0.05));
  return t;
}

tuning::Trial BadTrial() {
  tuning::Trial t(2);
  t.Set("learning_rate", tuning::KnobValue(0.9));  // diverges
  t.Set("momentum", tuning::KnobValue(0.99));
  t.Set("weight_decay", tuning::KnobValue(0.05));
  t.Set("dropout", tuning::KnobValue(0.65));
  t.Set("init_std", tuning::KnobValue(0.8));
  return t;
}

TEST(SurrogateTest, GoodTrialOutperformsBadTrial) {
  SurrogateOptions options;
  SurrogateTrainer good(options);
  ASSERT_TRUE(good.InitRandom(GoodTrial()).ok());
  SurrogateTrainer bad(options);
  ASSERT_TRUE(bad.InitRandom(BadTrial()).ok());
  EXPECT_GT(good.asymptote(), 0.8);
  EXPECT_TRUE(bad.diverged());
  EXPECT_NEAR(bad.asymptote(), options.diverged_accuracy, 1e-9);
}

TEST(SurrogateTest, AccuracyClimbsWithPlateau) {
  SurrogateTrainer t(SurrogateOptions{});
  ASSERT_TRUE(t.InitRandom(GoodTrial()).ok());
  std::vector<double> curve;
  for (int e = 0; e < 40; ++e) {
    curve.push_back(t.TrainEpoch().value());
  }
  // Early rise.
  EXPECT_GT(curve[10], curve[1]);
  // Plateau: epochs 14-20 improve little...
  EXPECT_LT(curve[20] - curve[14], 0.05);
  // ...then the decay-epoch rise unlocks the rest (paper's §4.2.2
  // observation motivating CoStudy).
  EXPECT_GT(curve[35], curve[18] + 0.03);
  // Converges near the asymptote.
  EXPECT_NEAR(curve[39], t.asymptote(), 0.03);
}

TEST(SurrogateTest, WarmStartSkipsAhead) {
  SurrogateOptions options;
  SurrogateTrainer donor(options);
  ASSERT_TRUE(donor.InitRandom(GoodTrial()).ok());
  for (int e = 0; e < 30; ++e) donor.TrainEpoch().value();
  ps::ModelCheckpoint ckpt = donor.Checkpoint();
  EXPECT_GT(ckpt.meta.accuracy, 0.6);

  SurrogateTrainer cold(options);
  ASSERT_TRUE(cold.InitRandom(GoodTrial()).ok());
  SurrogateTrainer warm(options);
  ASSERT_TRUE(warm.InitFromCheckpoint(GoodTrial(), ckpt).ok());
  double cold_first = cold.TrainEpoch().value();
  double warm_first = warm.TrainEpoch().value();
  EXPECT_GT(warm_first, cold_first + 0.2)
      << "warm start must begin near the donor's accuracy";
}

TEST(SurrogateTest, PoisonedWarmStartHurts) {
  // §4.2.2: "bad parameter initialization degrades the performance" — the
  // motivation for alpha-greedy.
  SurrogateOptions options;
  ps::ModelCheckpoint bad_ckpt;
  bad_ckpt.meta.accuracy = 0.12;  // below poison threshold

  SurrogateTrainer clean(options);
  ASSERT_TRUE(clean.InitRandom(GoodTrial()).ok());
  SurrogateTrainer poisoned(options);
  ASSERT_TRUE(poisoned.InitFromCheckpoint(GoodTrial(), bad_ckpt).ok());
  EXPECT_LT(poisoned.asymptote(), clean.asymptote() - 0.05);
}

TEST(SurrogateTest, DivergedTrialIgnoresCheckpoints) {
  SurrogateOptions options;
  ps::ModelCheckpoint good_ckpt;
  good_ckpt.meta.accuracy = 0.9;
  SurrogateTrainer t(options);
  ASSERT_TRUE(t.InitFromCheckpoint(BadTrial(), good_ckpt).ok());
  EXPECT_TRUE(t.diverged());
  EXPECT_NEAR(t.TrainEpoch().value(), options.diverged_accuracy, 0.05);
}

TEST(SurrogateTest, CheckpointCarriesState) {
  SurrogateTrainer t(SurrogateOptions{});
  ASSERT_TRUE(t.InitRandom(GoodTrial()).ok());
  for (int e = 0; e < 10; ++e) t.TrainEpoch().value();
  ps::ModelCheckpoint ckpt = t.Checkpoint();
  ASSERT_EQ(ckpt.params.size(), 1u);
  EXPECT_EQ(ckpt.params[0].first, "surrogate/state");
  EXPECT_EQ(ckpt.params[0].second.numel(), 4);
  EXPECT_GT(ckpt.meta.accuracy, 0.0);
}

TEST(SurrogateTest, FactoryForksSeeds) {
  SurrogateFactory factory(SurrogateOptions{});
  auto a = factory.Create(GoodTrial());
  auto b = factory.Create(GoodTrial());
  ASSERT_TRUE(a->InitRandom(GoodTrial()).ok());
  ASSERT_TRUE(b->InitRandom(GoodTrial()).ok());
  // Same trial, different noise streams.
  double ya = a->TrainEpoch().value();
  double yb = b->TrainEpoch().value();
  EXPECT_NE(ya, yb);
}

class RealTrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticTaskOptions options;
    options.num_classes = 4;
    options.samples_per_class = 60;
    options.input_dim = 16;
    options.separation = 4.0;
    options.spread = 0.8;
    data::Dataset all = data::MakeSyntheticTask(options);
    Rng rng(5);
    data::DataSplits splits = data::SplitDataset(all, 0.7, 0.3, rng);
    train_ = std::move(splits.train);
    val_ = std::move(splits.validation);
  }

  data::Dataset train_;
  data::Dataset val_;
};

TEST_F(RealTrainerTest, LearnsSeparableTask) {
  RealTrainer trainer(&train_, &val_, RealTrainerOptions{});
  tuning::Trial t = GoodTrial();
  t.Set("hidden_units", tuning::KnobValue(static_cast<int64_t>(32)));
  t.Set("dropout", tuning::KnobValue(0.0));
  ASSERT_TRUE(trainer.InitRandom(t).ok());
  double first = trainer.Evaluate().value();
  double acc = 0.0;
  for (int e = 0; e < 15; ++e) acc = trainer.TrainEpoch().value();
  EXPECT_GT(acc, 0.8) << "MLP should learn the separable task";
  EXPECT_GT(acc, first);
}

TEST_F(RealTrainerTest, RejectsInvalidTrials) {
  RealTrainer trainer(&train_, &val_, RealTrainerOptions{});
  tuning::Trial t = GoodTrial();
  t.Set("learning_rate", tuning::KnobValue(-0.5));
  EXPECT_TRUE(trainer.InitRandom(t).IsInvalidArgument());
  tuning::Trial t2 = GoodTrial();
  t2.Set("dropout", tuning::KnobValue(1.5));
  EXPECT_TRUE(trainer.InitRandom(t2).IsInvalidArgument());
  tuning::Trial t3 = GoodTrial();
  t3.Set("hidden_units", tuning::KnobValue(static_cast<int64_t>(-2)));
  EXPECT_TRUE(trainer.InitRandom(t3).IsInvalidArgument());
  // TrainEpoch before init is a precondition failure.
  RealTrainer fresh(&train_, &val_, RealTrainerOptions{});
  EXPECT_EQ(fresh.TrainEpoch().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RealTrainerTest, WarmStartFromCheckpointImprovesStart) {
  tuning::Trial t = GoodTrial();
  t.Set("hidden_units", tuning::KnobValue(static_cast<int64_t>(32)));
  t.Set("dropout", tuning::KnobValue(0.0));

  RealTrainer donor(&train_, &val_, RealTrainerOptions{});
  ASSERT_TRUE(donor.InitRandom(t).ok());
  for (int e = 0; e < 12; ++e) donor.TrainEpoch().value();
  ps::ModelCheckpoint ckpt = donor.Checkpoint();

  RealTrainerOptions options;
  options.seed = 77;
  RealTrainer cold(&train_, &val_, options);
  ASSERT_TRUE(cold.InitRandom(t).ok());
  RealTrainer warm(&train_, &val_, options);
  ASSERT_TRUE(warm.InitFromCheckpoint(t, ckpt).ok());
  EXPECT_GT(warm.Evaluate().value(), cold.Evaluate().value() + 0.2);
}

TEST_F(RealTrainerTest, CrossArchitectureWarmStartIsShapeMatched) {
  tuning::Trial small = GoodTrial();
  small.Set("hidden_units", tuning::KnobValue(static_cast<int64_t>(32)));
  RealTrainer donor(&train_, &val_, RealTrainerOptions{});
  ASSERT_TRUE(donor.InitRandom(small).ok());
  for (int e = 0; e < 5; ++e) donor.TrainEpoch().value();

  // Different hidden width: only the output bias can shape-match; the
  // warm start must still succeed (it just loads less).
  tuning::Trial big = GoodTrial();
  big.Set("hidden_units", tuning::KnobValue(static_cast<int64_t>(64)));
  RealTrainer warm(&train_, &val_, RealTrainerOptions{});
  EXPECT_TRUE(warm.InitFromCheckpoint(big, donor.Checkpoint()).ok());
  EXPECT_TRUE(warm.TrainEpoch().ok());
}

TEST_F(RealTrainerTest, EpochCostScalesWithModelSize) {
  tuning::Trial small = GoodTrial();
  small.Set("hidden_units", tuning::KnobValue(static_cast<int64_t>(32)));
  tuning::Trial big = GoodTrial();
  big.Set("hidden_units", tuning::KnobValue(static_cast<int64_t>(128)));
  RealTrainer a(&train_, &val_, RealTrainerOptions{});
  RealTrainer b(&train_, &val_, RealTrainerOptions{});
  ASSERT_TRUE(a.InitRandom(small).ok());
  ASSERT_TRUE(b.InitRandom(big).ok());
  EXPECT_LT(a.EpochCostSeconds(), b.EpochCostSeconds());
}

}  // namespace
}  // namespace rafiki::trainer
