#include <set>

#include "gtest/gtest.h"
#include "model/prediction_sim.h"
#include "model/profile.h"
#include "model/registry.h"

namespace rafiki::model {
namespace {

TEST(ProfileTest, CatalogHasSixteenConvNets) {
  EXPECT_EQ(ImageNetCatalog().size(), 16u);
  std::set<std::string> names;
  for (const ModelProfile& p : ImageNetCatalog()) names.insert(p.name);
  EXPECT_EQ(names.size(), 16u) << "duplicate model names";
}

TEST(ProfileTest, InceptionV3MatchesPaperCalibration) {
  // §7.2.1: c(16) = 0.07s, c(64) = 0.23s for inception_v3.
  auto p = FindProfile("inception_v3");
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->BatchLatency(16), 0.07, 0.005);
  EXPECT_NEAR(p->BatchLatency(64), 0.23, 0.005);
  // max throughput 64/0.23 ~ 272-278, min 16/0.07 ~ 228.
  EXPECT_NEAR(p->Throughput(64), 272.0, 10.0);
  EXPECT_NEAR(p->Throughput(16), 228.0, 5.0);
}

TEST(ProfileTest, MultiModelThroughputExtremesMatchPaper) {
  // §7.2.2: the 3-model set has max 572 and min 128 requests/second.
  std::vector<ModelProfile> set{
      FindProfile("inception_v3").value(),
      FindProfile("inception_v4").value(),
      FindProfile("inception_resnet_v2").value(),
  };
  EXPECT_NEAR(MaxThroughput(set, 64), 572.0, 10.0);
  EXPECT_NEAR(MinThroughput(set, 64), 128.0, 3.0);
}

TEST(ProfileTest, LatencyMonotoneInBatchSize) {
  for (const ModelProfile& p : ImageNetCatalog()) {
    EXPECT_GT(p.latency_intercept, 0.0) << p.name;
    EXPECT_GT(p.latency_slope, 0.0) << p.name;
    EXPECT_LT(p.BatchLatency(16), p.BatchLatency(64)) << p.name;
  }
}

TEST(ProfileTest, AccuracyOrderingSane) {
  // nasnet_large is the most accurate, per Figure 3.
  double best = 0.0;
  std::string best_name;
  for (const ModelProfile& p : ImageNetCatalog()) {
    if (p.top1_accuracy > best) {
      best = p.top1_accuracy;
      best_name = p.name;
    }
  }
  EXPECT_EQ(best_name, "nasnet_large");
  EXPECT_TRUE(FindProfile("not_a_model").status().IsNotFound());
}

class PredictionSimTest : public ::testing::Test {
 protected:
  static std::vector<ModelProfile> Fig6Models() {
    return {FindProfile("resnet_v2_101").value(),
            FindProfile("inception_v3").value(),
            FindProfile("inception_v4").value(),
            FindProfile("inception_resnet_v2").value()};
  }
};

TEST_F(PredictionSimTest, SingleModelAccuracyMatchesCalibration) {
  PredictionSimulator sim(Fig6Models(), PredictionSimOptions{});
  // Mask 0b0010 = inception_v3 alone.
  double acc = sim.EnsembleAccuracy(0b0010, 30000);
  EXPECT_NEAR(acc, 0.780, 0.01);
  double acc4 = sim.EnsembleAccuracy(0b1000, 30000);
  EXPECT_NEAR(acc4, 0.804, 0.01);
}

TEST_F(PredictionSimTest, PairTieBreakEqualsBetterModel) {
  // Figure 6's anomaly: {resnet_v2_101, inception_v3} == inception_v3,
  // because every disagreement is a tie broken toward the better model.
  PredictionSimulator sim(Fig6Models(), PredictionSimOptions{});
  double pair = sim.EnsembleAccuracy(0b0011, 30000);
  PredictionSimulator sim2(Fig6Models(), PredictionSimOptions{});
  double single = sim2.EnsembleAccuracy(0b0010, 30000);
  EXPECT_NEAR(pair, single, 0.01);
}

TEST_F(PredictionSimTest, MoreModelsGenerallyBetter) {
  PredictionSimulator sim(Fig6Models(), PredictionSimOptions{});
  double all4 = sim.EnsembleAccuracy(0b1111, 30000);
  PredictionSimulator sim2(Fig6Models(), PredictionSimOptions{});
  double best_single = sim2.EnsembleAccuracy(0b1000, 30000);
  EXPECT_GT(all4, best_single) << "4-model ensemble should beat best single";
  // The gain is modest (correlated errors), as in Figure 6 (~1-2 points).
  EXPECT_LT(all4, best_single + 0.05);
}

TEST_F(PredictionSimTest, RandomTieBreakIsWorse) {
  // Ablation (DESIGN.md decision 1): random tie-break should not beat the
  // paper's best-accuracy tie-break for a 2-model ensemble.
  PredictionSimulator a(Fig6Models(), PredictionSimOptions{});
  double paper = a.EnsembleAccuracy(0b0011, 30000);
  PredictionSimulator b(Fig6Models(), PredictionSimOptions{});
  double random = b.EnsembleAccuracyRandomTie(0b0011, 30000);
  EXPECT_GE(paper + 0.005, random);
}

TEST_F(PredictionSimTest, AccuracyTableConsistentWithSimulator) {
  EnsembleAccuracyTable table(Fig6Models(), PredictionSimOptions{}, 20000);
  EXPECT_EQ(table.num_models(), 4u);
  for (uint32_t mask = 1; mask < 16; ++mask) {
    double a = table.Accuracy(mask);
    EXPECT_GT(a, 0.70);
    EXPECT_LT(a, 0.90);
  }
  // Supersets that add a strong model should not hurt much.
  EXPECT_GT(table.Accuracy(0b1111), table.Accuracy(0b0001) - 0.01);
}

TEST(RegistryTest, BuiltInTasksPresent) {
  TaskRegistry registry = TaskRegistry::BuiltIn();
  auto tasks = registry.Tasks();
  EXPECT_EQ(tasks.size(), 3u);
  auto image = registry.ModelsForTask("ImageClassification");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->size(), 16u);
  EXPECT_TRUE(registry.ModelsForTask("NoSuchTask").status().IsNotFound());
}

TEST(RegistryTest, SelectDiversePrefersDistinctFamilies) {
  TaskRegistry registry = TaskRegistry::BuiltIn();
  auto picked = registry.SelectDiverse("ImageClassification", 4);
  ASSERT_TRUE(picked.ok());
  ASSERT_EQ(picked->size(), 4u);
  std::set<Family> families;
  for (const ModelProfile& p : *picked) families.insert(p.family);
  EXPECT_EQ(families.size(), 4u) << "§4.1 wants architecture diversity";
  // Best-first within the diversity constraint.
  EXPECT_EQ((*picked)[0].name, "nasnet_large");
}

TEST(RegistryTest, SelectDiverseFillsWhenFamiliesExhausted) {
  TaskRegistry registry = TaskRegistry::BuiltIn();
  auto picked = registry.SelectDiverse("ImageClassification", 10);
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(picked->size(), 10u);
  auto zero = registry.SelectDiverse("ImageClassification", 0);
  EXPECT_FALSE(zero.ok());
}

}  // namespace
}  // namespace rafiki::model
