#include "rafiki/gateway.h"

#include <future>
#include <thread>

#include "common/string_util.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "rafiki/http_gateway.h"
#include "serving/rl_scheduler.h"

namespace rafiki::api {
namespace {

class GatewayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticTaskOptions task;
    task.num_classes = 3;
    task.samples_per_class = 50;
    task.input_dim = 8;
    task.separation = 5.0;
    dataset_ = data::MakeSyntheticTask(task);
    ASSERT_TRUE(rafiki_.ImportDataset("t", dataset_).ok());
  }

  /// Extracts "key=..." from a response body.
  static std::string Field(const std::string& body, const std::string& key) {
    for (const std::string& pair : Split(body, '&')) {
      if (StartsWith(pair, key + "=")) return pair.substr(key.size() + 1);
    }
    return "";
  }

  Rafiki rafiki_;
  Gateway gateway_{&rafiki_};
  data::Dataset dataset_;
};

TEST_F(GatewayTest, ParseBasics) {
  auto r = Gateway::Parse("POST /train dataset=t&trials=4\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->method, "POST");
  EXPECT_EQ(r->path, "/train");
  EXPECT_EQ(r->params.at("dataset"), "t");
  EXPECT_EQ(r->params.at("trials"), "4");

  auto q = Gateway::Parse("POST /query?job=infer1\n0.5,1.5");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->path, "/query");
  EXPECT_EQ(q->params.at("job"), "infer1");
  EXPECT_EQ(q->body, "0.5,1.5");
}

TEST_F(GatewayTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Gateway::Parse("").ok());
  EXPECT_FALSE(Gateway::Parse("GET").ok());
  EXPECT_FALSE(Gateway::Parse("GET nopath").ok());
  EXPECT_FALSE(Gateway::Parse("GET /x badparam").ok());
}

TEST_F(GatewayTest, ParseStripsTrailingCarriageReturn) {
  // CRLF request lines (what a real socket front-end sends) must not leak
  // '\r' into paths or parameter values.
  auto r = Gateway::Parse("POST /train dataset=t&trials=4\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->path, "/train");
  EXPECT_EQ(r->params.at("trials"), "4");

  auto q = Gateway::Parse("GET /jobs/job0\r\n");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->path, "/jobs/job0");

  // Headless CRLF request (no body line).
  auto h = Gateway::Parse("GET /jobs/job0\r");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->path, "/jobs/job0");
}

TEST_F(GatewayTest, UnknownRouteIs404) {
  EXPECT_EQ(gateway_.Handle("GET /nope").status, 404);
  EXPECT_EQ(gateway_.Handle("POST /nope").status, 404);
}

TEST_F(GatewayTest, WrongMethodOnKnownPathIs405) {
  EXPECT_EQ(gateway_.Handle("POST /jobs/x").status, 405);
  EXPECT_EQ(gateway_.Handle("DELETE /jobs/x/metrics").status, 405);
  EXPECT_EQ(gateway_.Handle("GET /train dataset=t").status, 405);
  EXPECT_EQ(gateway_.Handle("GET /deploy job=x").status, 405);
  EXPECT_EQ(gateway_.Handle("GET /query job=x").status, 405);
  EXPECT_EQ(gateway_.Handle("PUT /undeploy job=x").status, 405);
}

TEST_F(GatewayTest, PercentDecodesParams) {
  auto r = Gateway::Parse("POST /train dataset=my%2Fset&note=a+b%21\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->params.at("dataset"), "my/set");
  EXPECT_EQ(r->params.at("note"), "a b!");
  // '+' decodes to space only in values; keys decode %XX too.
  auto k = Gateway::Parse("GET /jobs/j %6aob=x\n");
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k->params.at("job"), "x");
}

TEST_F(GatewayTest, OversizedRequestsAre413) {
  std::string long_line =
      "GET /jobs/" + std::string(Gateway::kMaxRequestLine, 'x');
  EXPECT_EQ(gateway_.Handle(long_line).status, 413);
  std::string big_body = "POST /query job=x\n" +
                         std::string(Gateway::kMaxBodyBytes + 1, '1');
  EXPECT_EQ(gateway_.Handle(big_body).status, 413);
  // At the cap is still fine (parses, fails later on the bad feature list).
  std::string ok_body = "POST /query job=x\n" +
                        std::string(Gateway::kMaxBodyBytes, '1');
  EXPECT_NE(gateway_.Handle(ok_body).status, 413);
}

TEST_F(GatewayTest, TrainValidation) {
  EXPECT_EQ(gateway_.Handle("POST /train trials=4").status, 400);
  EXPECT_EQ(gateway_.Handle("POST /train dataset=ghost").status, 404);
  EXPECT_EQ(
      gateway_.Handle("POST /train dataset=t&advisor=alien").status, 400);
  EXPECT_EQ(gateway_.Handle("POST /train dataset=t&trials=-2").status, 400);
}

TEST_F(GatewayTest, TrainRejectsNonNumericAndBadRanges) {
  // strtoll without end-pointer checking used to turn these into 0
  // silently; they must be 400s.
  EXPECT_EQ(gateway_.Handle("POST /train dataset=t&trials=abc").status, 400);
  EXPECT_EQ(gateway_.Handle("POST /train dataset=t&trials=4x").status, 400);
  EXPECT_EQ(gateway_.Handle("POST /train dataset=t&epochs=abc").status, 400);
  EXPECT_EQ(gateway_.Handle("POST /train dataset=t&epochs=0").status, 400);
  EXPECT_EQ(gateway_.Handle("POST /train dataset=t&epochs=-3").status, 400);
  EXPECT_EQ(gateway_.Handle("POST /train dataset=t&workers=two").status, 400);
  EXPECT_EQ(gateway_.Handle("POST /train dataset=t&seed=1.5").status, 400);
  EXPECT_EQ(gateway_.Handle("POST /train dataset=t&trials=").status, 400);
  EXPECT_EQ(
      gateway_.Handle("POST /train dataset=t&trials=99999999999999999999")
          .status,
      400);
}

TEST_F(GatewayTest, FullLifecycleOverTheWireProtocol) {
  // The Figure 18 surface end-to-end: train -> poll -> deploy -> query ->
  // undeploy, all through request strings.
  GatewayResponse train = gateway_.Handle(
      "POST /train dataset=t&trials=4&epochs=6&workers=2&advisor=random");
  ASSERT_EQ(train.status, 200) << train.body;
  std::string job = Field(train.body, "job_id");
  ASSERT_FALSE(job.empty());

  // Poll until done.
  GatewayResponse info{0, ""};
  for (int i = 0; i < 20000; ++i) {
    info = gateway_.Handle("GET /jobs/" + job);
    ASSERT_EQ(info.status, 200) << info.body;
    if (Field(info.body, "done") == "1") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(Field(info.body, "done"), "1");
  EXPECT_EQ(Field(info.body, "trials"), "4");

  GatewayResponse deploy = gateway_.Handle("POST /deploy job=" + job);
  ASSERT_EQ(deploy.status, 200) << deploy.body;
  std::string infer = Field(deploy.body, "job_id");

  // Query the first dataset row through the text body.
  std::vector<std::string> fields;
  for (int64_t i = 0; i < dataset_.x.dim(1); ++i) {
    fields.push_back(std::to_string(dataset_.x.at(i)));
  }
  GatewayResponse query = gateway_.Handle("POST /query job=" + infer + "\n" +
                                          Join(fields, ","));
  ASSERT_EQ(query.status, 200) << query.body;
  std::string label = Field(query.body, "label");
  EXPECT_FALSE(label.empty());
  EXPECT_GE(std::stoi(label), 0);
  EXPECT_LT(std::stoi(label), 3);

  EXPECT_EQ(gateway_.Handle("POST /undeploy job=" + infer).status, 200);
  EXPECT_EQ(gateway_.Handle("POST /undeploy job=" + infer).status, 404);
  EXPECT_EQ(gateway_.Handle("POST /query job=" + infer + "\n1,2").status,
            404);
}

TEST_F(GatewayTest, QueryValidation) {
  EXPECT_EQ(gateway_.Handle("POST /query job=ghost\n1,2").status, 404);
  EXPECT_EQ(gateway_.Handle("POST /query job=x").status, 400);  // no body
  // Bad floats rejected before dispatch.
  EXPECT_EQ(gateway_.Handle("POST /query job=x\nabc,def").status, 400);
  EXPECT_EQ(gateway_.Handle("POST /query job=x\n1,,2").status, 400);
}

TEST_F(GatewayTest, DeployValidation) {
  EXPECT_EQ(gateway_.Handle("POST /deploy").status, 400);
  EXPECT_EQ(gateway_.Handle("POST /deploy job=ghost").status, 404);
}

TEST_F(GatewayTest, InferenceMetricsRoute) {
  // Deploy straight from a hand-built PS checkpoint (no training needed).
  ps::ModelCheckpoint ckpt;
  Tensor weight({4, 3});
  for (int64_t i = 0; i < 3; ++i) weight.at2(i, i) = 1.0f;
  ckpt.params.emplace_back("fc0/weight", weight);
  ckpt.params.emplace_back("fc0/bias", Tensor({1, 3}));
  ckpt.meta.accuracy = 0.9;
  ASSERT_TRUE(
      rafiki_.parameter_server().PutModel("study/fake/best", ckpt).ok());
  ModelHandle handle;
  handle.scope = "study/fake/best";
  handle.model_name = "mlp";
  handle.accuracy = 0.9;
  auto deployed = rafiki_.Deploy({handle});
  ASSERT_TRUE(deployed.ok());
  std::string infer = *deployed;

  // Fresh job: zero counters over the wire.
  GatewayResponse empty = gateway_.Handle("GET /jobs/" + infer + "/metrics");
  ASSERT_EQ(empty.status, 200) << empty.body;
  EXPECT_EQ(Field(empty.body, "arrived"), "0");

  GatewayResponse query =
      gateway_.Handle("POST /query job=" + infer + "\n0,1,0,0");
  ASSERT_EQ(query.status, 200) << query.body;
  EXPECT_EQ(Field(query.body, "label"), "1");

  GatewayResponse metrics = gateway_.Handle("GET /jobs/" + infer + "/metrics");
  ASSERT_EQ(metrics.status, 200) << metrics.body;
  EXPECT_EQ(Field(metrics.body, "arrived"), "1");
  EXPECT_EQ(Field(metrics.body, "processed"), "1");
  EXPECT_EQ(Field(metrics.body, "dropped"), "0");
  EXPECT_FALSE(Field(metrics.body, "mean_latency").empty());
  EXPECT_EQ(Field(metrics.body, "queue"), "0");
  // One processed request: every percentile equals that one latency.
  EXPECT_FALSE(Field(metrics.body, "p50").empty());
  EXPECT_EQ(Field(metrics.body, "p50"), Field(metrics.body, "p99"));
  EXPECT_GT(std::stod(Field(metrics.body, "p50")), 0.0);

  EXPECT_EQ(gateway_.Handle("GET /jobs/ghost/metrics").status, 404);
  EXPECT_EQ(gateway_.Handle("POST /undeploy job=" + infer).status, 200);
  EXPECT_EQ(gateway_.Handle("GET /jobs/" + infer + "/metrics").status, 404);
}

TEST_F(GatewayTest, JobScopedQueryRoute) {
  ps::ModelCheckpoint ckpt;
  Tensor weight({4, 3});
  for (int64_t i = 0; i < 3; ++i) weight.at2(i, i) = 1.0f;
  ckpt.params.emplace_back("fc0/weight", weight);
  ckpt.params.emplace_back("fc0/bias", Tensor({1, 3}));
  ckpt.meta.accuracy = 0.9;
  ASSERT_TRUE(
      rafiki_.parameter_server().PutModel("study/fake/best", ckpt).ok());
  ModelHandle handle;
  handle.scope = "study/fake/best";
  handle.model_name = "mlp";
  handle.accuracy = 0.9;
  auto deployed = rafiki_.Deploy({handle});
  ASSERT_TRUE(deployed.ok());

  // POST /jobs/<id>/query is the same data plane as POST /query?job=<id>.
  GatewayResponse query =
      gateway_.Handle("POST /jobs/" + *deployed + "/query\n0,1,0,0");
  ASSERT_EQ(query.status, 200) << query.body;
  EXPECT_EQ(Field(query.body, "label"), "1");

  EXPECT_EQ(gateway_.Handle("GET /jobs/" + *deployed + "/query").status,
            405);
  EXPECT_EQ(gateway_.Handle("POST /jobs//query\n0,1,0,0").status, 400);
  EXPECT_EQ(gateway_.Handle("POST /jobs/ghost/query\n0,1,0,0").status, 404);
  ASSERT_TRUE(rafiki_.Undeploy(*deployed).ok());
}

TEST_F(GatewayTest, DispatchAsyncCompletesQueryFromDispatcherThread) {
  ps::ModelCheckpoint ckpt;
  Tensor weight({4, 3});
  for (int64_t i = 0; i < 3; ++i) weight.at2(i, i) = 1.0f;
  ckpt.params.emplace_back("fc0/weight", weight);
  ckpt.params.emplace_back("fc0/bias", Tensor({1, 3}));
  ckpt.meta.accuracy = 0.9;
  ASSERT_TRUE(
      rafiki_.parameter_server().PutModel("study/fake/best", ckpt).ok());
  ModelHandle handle;
  handle.scope = "study/fake/best";
  handle.model_name = "mlp";
  handle.accuracy = 0.9;
  auto deployed = rafiki_.Deploy({handle});
  ASSERT_TRUE(deployed.ok());

  auto parsed = Gateway::Parse("POST /query job=" + *deployed + "\n0,0,1,0");
  ASSERT_TRUE(parsed.ok());
  std::promise<GatewayResponse> promise;
  std::future<GatewayResponse> future = promise.get_future();
  gateway_.DispatchAsync(*parsed, [&promise](GatewayResponse response) {
    promise.set_value(std::move(response));
  });
  GatewayResponse response = future.get();
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(Field(response.body, "label"), "2");

  // Control-plane routes complete inline (same answers as Dispatch).
  auto metrics_req =
      Gateway::Parse("GET /jobs/" + *deployed + "/metrics\n");
  ASSERT_TRUE(metrics_req.ok());
  GatewayResponse metrics;
  gateway_.DispatchAsync(*metrics_req, [&metrics](GatewayResponse r) {
    metrics = std::move(r);
  });
  EXPECT_EQ(metrics.status, 200) << metrics.body;
  EXPECT_EQ(Field(metrics.body, "processed"), "1");
  EXPECT_EQ(Field(metrics.body, "expired"), "0");

  // Async submission errors answer inline too: unknown job is a 404.
  auto ghost = Gateway::Parse("POST /query job=ghost\n1,2");
  ASSERT_TRUE(ghost.ok());
  GatewayResponse ghost_resp;
  gateway_.DispatchAsync(*ghost, [&ghost_resp](GatewayResponse r) {
    ghost_resp = std::move(r);
  });
  EXPECT_EQ(ghost_resp.status, 404);
  ASSERT_TRUE(rafiki_.Undeploy(*deployed).ok());
}

TEST_F(GatewayTest, QueueDeadlineMapsTo504) {
  ps::ModelCheckpoint ckpt;
  Tensor weight({4, 3});
  for (int64_t i = 0; i < 3; ++i) weight.at2(i, i) = 1.0f;
  ckpt.params.emplace_back("fc0/weight", weight);
  ckpt.params.emplace_back("fc0/bias", Tensor({1, 3}));
  ckpt.meta.accuracy = 0.9;
  ASSERT_TRUE(
      rafiki_.parameter_server().PutModel("study/fake/best", ckpt).ok());
  ModelHandle handle;
  handle.scope = "study/fake/best";
  handle.model_name = "mlp";
  handle.accuracy = 0.9;
  serving::RuntimeOptions options;
  options.tau = 1e-9;  // unmeetable: every query expires in the queue
  options.expire_overdue = true;
  options.calibrate = false;
  auto deployed = rafiki_.Deploy({handle}, options);
  ASSERT_TRUE(deployed.ok());

  // Sync path: the gateway maps kDeadlineExceeded to HTTP 504.
  GatewayResponse sync_resp =
      gateway_.Handle("POST /query job=" + *deployed + "\n0,1,0,0");
  EXPECT_EQ(sync_resp.status, 504) << sync_resp.body;

  // Async path: same mapping through the continuation.
  auto parsed = Gateway::Parse("POST /jobs/" + *deployed + "/query\n0,1,0,0");
  ASSERT_TRUE(parsed.ok());
  std::promise<GatewayResponse> promise;
  std::future<GatewayResponse> future = promise.get_future();
  gateway_.DispatchAsync(*parsed, [&promise](GatewayResponse response) {
    promise.set_value(std::move(response));
  });
  EXPECT_EQ(future.get().status, 504);

  GatewayResponse metrics =
      gateway_.Handle("GET /jobs/" + *deployed + "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_EQ(Field(metrics.body, "expired"), "2");
  EXPECT_EQ(Field(metrics.body, "processed"), "0");
  ASSERT_TRUE(rafiki_.Undeploy(*deployed).ok());
}

TEST_F(GatewayTest, DeployPolicyParamValidatedBeforeJobLookup) {
  // A bad policy is a 400 even for an unknown job; a good one falls
  // through to the normal 404.
  EXPECT_EQ(gateway_.Handle("POST /deploy job=ghost&policy=bogus").status,
            400);
  EXPECT_EQ(gateway_.Handle("POST /deploy job=ghost&policy=rl").status, 404);
  EXPECT_EQ(gateway_.Handle("POST /deploy job=ghost&policy=greedy").status,
            404);
}

TEST_F(GatewayTest, MetricsExposePolicyGauges) {
  ps::ModelCheckpoint ckpt;
  Tensor weight({4, 3});
  for (int64_t i = 0; i < 3; ++i) weight.at2(i, i) = 1.0f;
  ckpt.params.emplace_back("fc0/weight", weight);
  ckpt.params.emplace_back("fc0/bias", Tensor({1, 3}));
  ckpt.meta.accuracy = 0.9;
  ASSERT_TRUE(
      rafiki_.parameter_server().PutModel("study/fake/best", ckpt).ok());
  ModelHandle handle;
  handle.scope = "study/fake/best";
  handle.model_name = "mlp";
  handle.accuracy = 0.9;
  serving::RuntimeOptions options;
  options.policy_factory = serving::MakeRlSchedulerFactory();
  auto deployed = rafiki_.Deploy({handle}, options);
  ASSERT_TRUE(deployed.ok());

  GatewayResponse query =
      gateway_.Handle("POST /query job=" + *deployed + "\n0,1,0,0");
  ASSERT_EQ(query.status, 200) << query.body;

  GatewayResponse metrics =
      gateway_.Handle("GET /jobs/" + *deployed + "/metrics");
  ASSERT_EQ(metrics.status, 200) << metrics.body;
  EXPECT_EQ(Field(metrics.body, "policy"), "rl");
  EXPECT_EQ(Field(metrics.body, "learn_steps"), "1");
  EXPECT_GT(std::stod(Field(metrics.body, "reward")), 0.0);
  EXPECT_NEAR(std::stod(Field(metrics.body, "accuracy_sum")), 0.9, 1e-6);
  EXPECT_EQ(Field(metrics.body, "reward_overdue"), "0");
  EXPECT_EQ(Field(metrics.body, "reward_pending"), "0");
  ASSERT_TRUE(rafiki_.Undeploy(*deployed).ok());
}

TEST_F(GatewayTest, HttpAdapters504ParitySyncVsAsync) {
  // Satellite regression: the queue deadline must surface as HTTP 504 with
  // identical semantics through BOTH front-door adapters — the blocking
  // Handler (--sync=1) and the continuation-based AsyncHandler — over a
  // real server + client round trip.
  ps::ModelCheckpoint ckpt;
  Tensor weight({4, 3});
  for (int64_t i = 0; i < 3; ++i) weight.at2(i, i) = 1.0f;
  ckpt.params.emplace_back("fc0/weight", weight);
  ckpt.params.emplace_back("fc0/bias", Tensor({1, 3}));
  ckpt.meta.accuracy = 0.9;
  ASSERT_TRUE(
      rafiki_.parameter_server().PutModel("study/fake/best", ckpt).ok());
  ModelHandle handle;
  handle.scope = "study/fake/best";
  handle.model_name = "mlp";
  handle.accuracy = 0.9;
  serving::RuntimeOptions options;
  options.tau = 1e-9;  // unmeetable: every query expires in the queue
  options.expire_overdue = true;
  options.calibrate = false;
  auto deployed = rafiki_.Deploy({handle}, options);
  ASSERT_TRUE(deployed.ok());
  const std::string target = "/query?job=" + *deployed;

  net::HttpServerOptions opts;
  opts.port = 0;
  opts.num_workers = 1;
  opts.num_handler_threads = 1;

  {
    // Sync adapter behind an async shim — exactly what rafiki_serve
    // --sync=1 runs.
    net::HttpServer::Handler sync = MakeGatewayHttpHandler(&gateway_);
    net::HttpServer server(
        [sync](const net::HttpRequest& request,
               net::HttpServer::ResponseWriter writer) {
          writer.Complete(sync(request));
        },
        opts);
    ASSERT_TRUE(server.Start().ok());
    net::HttpClient client("127.0.0.1", server.port());
    auto status = client.RequestView("POST", target, "0,1,0,0");
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    EXPECT_EQ(*status, 504) << client.body();
    server.Stop();
  }
  {
    net::HttpServer server(MakeGatewayAsyncHttpHandler(&gateway_), opts);
    ASSERT_TRUE(server.Start().ok());
    net::HttpClient client("127.0.0.1", server.port());
    auto status = client.RequestView("POST", target, "0,1,0,0");
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    EXPECT_EQ(*status, 504) << client.body();
    server.Stop();
  }

  GatewayResponse metrics =
      gateway_.Handle("GET /jobs/" + *deployed + "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_EQ(Field(metrics.body, "expired"), "2");
  ASSERT_TRUE(rafiki_.Undeploy(*deployed).ok());
}

TEST_F(GatewayTest, ClusterMetricsRoute) {
  // Idle facade: the route answers with zeroed worker/ledger gauges.
  GatewayResponse idle = gateway_.Handle("GET /cluster/metrics");
  ASSERT_EQ(idle.status, 200) << idle.body;
  EXPECT_EQ(Field(idle.body, "workers_total"), "0");
  EXPECT_EQ(Field(idle.body, "trials_proposed"), "0");
  EXPECT_NE(Field(idle.body, "bus_endpoints"), "");
  EXPECT_EQ(gateway_.Handle("POST /cluster/metrics").status, 405);

  // A finished study leaves its worker containers and ledger visible.
  GatewayResponse train = gateway_.Handle(
      "POST /train dataset=t&trials=4&epochs=10&workers=2");
  ASSERT_EQ(train.status, 200);
  std::string job = Field(train.body, "job_id");
  for (int i = 0; i < 20000; ++i) {
    if (Field(gateway_.Handle("GET /jobs/" + job).body, "done") == "1") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  GatewayResponse after = gateway_.Handle("GET /cluster/metrics");
  ASSERT_EQ(after.status, 200) << after.body;
  EXPECT_EQ(Field(after.body, "workers_total"), "2");
  EXPECT_EQ(Field(after.body, "trials_proposed"), "4");
  EXPECT_EQ(Field(after.body, "trials_completed"), "4");
  EXPECT_EQ(Field(after.body, "trials_active"), "0");
}

TEST_F(GatewayTest, StatusMapping) {
  // FailedPrecondition (job still training) maps to 409.
  GatewayResponse train = gateway_.Handle(
      "POST /train dataset=t&trials=8&epochs=10&workers=1");
  ASSERT_EQ(train.status, 200);
  std::string job = Field(train.body, "job_id");
  GatewayResponse deploy = gateway_.Handle("POST /deploy job=" + job);
  // Either it already finished (200) or it's mid-training (409).
  EXPECT_TRUE(deploy.status == 200 || deploy.status == 409) << deploy.body;
  // Drain the job so the fixture tears down cleanly.
  for (int i = 0; i < 20000; ++i) {
    if (Field(gateway_.Handle("GET /jobs/" + job).body, "done") == "1") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace
}  // namespace rafiki::api
