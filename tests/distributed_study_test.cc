// End-to-end tests of the distributed tuning plane: the PS-over-bus
// protocol, the checkpoint codec, cross-process blob persistence, exact
// TCP-vs-loopback study parity, and the kill-a-worker-mid-trial recovery
// storm with a balanced trial ledger.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/message_bus.h"
#include "cluster/ps_service.h"
#include "cluster/rpc_bus.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "gtest/gtest.h"
#include "ps/checkpoint_codec.h"
#include "ps/parameter_server.h"
#include "storage/blob_store.h"
#include "trainer/surrogate.h"
#include "tuning/study.h"
#include "tuning/trial_advisor.h"

namespace rafiki::tuning {
namespace {

using namespace std::chrono_literals;

HyperSpace MakeOptimizerSpace() {
  HyperSpace space;
  EXPECT_TRUE(space.AddRangeKnob("learning_rate", KnobDtype::kFloat, 1e-4,
                                 1.0, /*log_scale=*/true)
                  .ok());
  EXPECT_TRUE(
      space.AddRangeKnob("momentum", KnobDtype::kFloat, 0.0, 0.999).ok());
  EXPECT_TRUE(space.AddRangeKnob("init_std", KnobDtype::kFloat, 1e-3, 1.0,
                                 /*log_scale=*/true)
                  .ok());
  return space;
}

ps::ModelCheckpoint MakeCheckpoint(double accuracy) {
  ps::ModelCheckpoint ckpt;
  ckpt.params.emplace_back("fc0/weight",
                           Tensor({2, 3}, {1, 2, 3, 4, 5, 6}));
  ckpt.params.emplace_back("fc0/bias", Tensor({3}, {0.5f, -0.5f, 0.25f}));
  ckpt.meta.version = 3;
  ckpt.meta.accuracy = accuracy;
  ckpt.meta.visibility = ps::Visibility::kPublic;
  ckpt.meta.owner = "study/test";
  return ckpt;
}

void ExpectSameCheckpoint(const ps::ModelCheckpoint& a,
                          const ps::ModelCheckpoint& b) {
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t i = 0; i < a.params.size(); ++i) {
    EXPECT_EQ(a.params[i].first, b.params[i].first);
    ASSERT_EQ(a.params[i].second.shape(), b.params[i].second.shape());
    for (int64_t j = 0; j < a.params[i].second.numel(); ++j) {
      EXPECT_EQ(a.params[i].second.data()[j], b.params[i].second.data()[j]);
    }
  }
  EXPECT_EQ(a.meta.version, b.meta.version);
  EXPECT_DOUBLE_EQ(a.meta.accuracy, b.meta.accuracy);
  EXPECT_EQ(a.meta.visibility, b.meta.visibility);
  EXPECT_EQ(a.meta.owner, b.meta.owner);
}

std::string TempDir(const char* tag) {
  std::string dir = StrFormat("/tmp/rafiki_test_%s_%d", tag, getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(CheckpointCodecTest, RoundTripsTensorsAndMeta) {
  ps::ModelCheckpoint ckpt = MakeCheckpoint(0.91);
  std::string bytes = ps::SerializeCheckpoint(ckpt);
  auto decoded = ps::DeserializeCheckpoint(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSameCheckpoint(ckpt, decoded.value());
}

TEST(CheckpointCodecTest, RejectsTruncationAndTrailingGarbage) {
  std::string bytes = ps::SerializeCheckpoint(MakeCheckpoint(0.5));
  for (size_t cut = 0; cut < bytes.size(); cut += 3) {
    EXPECT_FALSE(
        ps::DeserializeCheckpoint(std::string_view(bytes.data(), cut)).ok())
        << "cut=" << cut;
  }
  EXPECT_FALSE(ps::DeserializeCheckpoint(bytes + "z").ok());
}

TEST(CheckpointCodecTest, FuzzedBytesNeverCrash) {
  Rng rng(123);
  std::string bytes = ps::SerializeCheckpoint(MakeCheckpoint(0.5));
  for (int i = 0; i < 1000; ++i) {
    std::string mutated = bytes;
    for (int f = 0; f < 3; ++f) {
      mutated[rng.Next64() % mutated.size()] ^=
          static_cast<char>(1 + rng.Next64() % 255);
    }
    (void)ps::DeserializeCheckpoint(mutated);
  }
}

TEST(PsServiceTest, RemoteStoreRoundTripsOverLoopback) {
  cluster::MessageBus bus;
  ps::ParameterServer ps;
  cluster::PsService service(&bus, &ps);
  ASSERT_TRUE(service.Start().ok());

  cluster::RemoteParameterStore remote(&bus, "w0");
  ps::ModelCheckpoint ckpt = MakeCheckpoint(0.7);
  ASSERT_TRUE(remote.PutModel("scope/a", ckpt).ok());
  auto got = remote.GetModel("scope/a");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSameCheckpoint(ckpt, got.value());

  // Misses surface as NotFound (the warm-start probe path), not a timeout.
  auto miss = remote.GetModel("scope/none");
  ASSERT_FALSE(miss.ok());
  EXPECT_TRUE(miss.status().IsNotFound());
  EXPECT_GE(service.requests_served(), 3u);
  service.Stop();
}

TEST(PsServiceTest, RemoteStoreRoundTripsOverTcp) {
  auto hub = cluster::RpcBus::Listen({});
  ASSERT_TRUE(hub.ok());
  ps::ParameterServer ps;
  cluster::PsService service(hub.value().get(), &ps);
  ASSERT_TRUE(service.Start().ok());

  cluster::RpcBusOptions opts;
  opts.port = hub.value()->port();
  auto leaf = cluster::RpcBus::Connect(opts);
  ASSERT_TRUE(leaf.ok());

  cluster::RemoteParameterStore remote(leaf.value().get(), "w0");
  ps::ModelCheckpoint ckpt = MakeCheckpoint(0.66);
  ASSERT_TRUE(remote.PutModel("scope/tcp", ckpt).ok());
  auto got = remote.GetModel("scope/tcp");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSameCheckpoint(ckpt, got.value());
  // The same scope is visible to the master-side in-process PS: one store.
  EXPECT_TRUE(ps.GetModel("scope/tcp").ok());
  service.Stop();
}

TEST(BlobStoreTest, PersistsAcrossInstances) {
  // Two BlobStore instances on one directory model a master process dying
  // and its successor reading the checkpoints back from disk.
  std::string dir = TempDir("blob");
  std::vector<uint8_t> value{1, 2, 3, 250, 0, 9};
  {
    storage::BlobStore writer(0, dir);
    ASSERT_TRUE(writer.Put("study/s/master_ckpt", value).ok());
  }
  storage::BlobStore reader(0, dir);
  EXPECT_FALSE(reader.Exists("study/s/master_ckpt"));  // memory is empty
  auto got = reader.Get("study/s/master_ckpt");        // disk is not
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), value);
  // Keys with separators escape to flat filenames; no subdirs appear.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_TRUE(entry.is_regular_file());
  }
  std::filesystem::remove_all(dir);
}

StudyConfig ParityConfig() {
  StudyConfig config;
  config.max_trials = 6;
  config.max_epochs_per_trial = 8;
  config.collaborative = false;
  // Early-stop timing is transport-dependent (kStop arrival races the
  // epoch loop), so exact parity requires disabling it.
  config.early_stop_patience = 1000000;
  return config;
}

StudyStats RunOverTcp(StudyConfig config, uint64_t seed) {
  HyperSpace space = MakeOptimizerSpace();
  RandomSearchAdvisor advisor(&space, config.max_trials, /*seed=*/3);
  auto hub = cluster::RpcBus::Listen({});
  EXPECT_TRUE(hub.ok());
  ps::ParameterServer ps;
  cluster::PsService service(hub.value().get(), &ps);
  EXPECT_TRUE(service.Start().ok());

  config.num_workers = 1;
  StudyMaster master("parity", config, &advisor, hub.value().get(), nullptr);
  std::thread master_thread([&] {
    cluster::CancelToken token;
    master.Run(token);
  });

  cluster::RpcBusOptions opts;
  opts.port = hub.value()->port();
  auto leaf = cluster::RpcBus::Connect(opts);
  EXPECT_TRUE(leaf.ok());
  cluster::RemoteParameterStore remote(leaf.value().get(), "w0");
  trainer::SurrogateFactory factory(trainer::SurrogateOptions{});
  Rng seeds(seed);
  StudyWorker worker("parity", "w0", config, &factory, leaf.value().get(),
                     &remote, seeds.Fork().Next64());
  cluster::CancelToken token;
  worker.Run(token);
  master_thread.join();
  service.Stop();
  return master.stats();
}

StudyStats RunOverLoopback(StudyConfig config, uint64_t seed) {
  HyperSpace space = MakeOptimizerSpace();
  RandomSearchAdvisor advisor(&space, config.max_trials, /*seed=*/3);
  cluster::MessageBus bus;
  ps::ParameterServer ps;
  trainer::SurrogateFactory factory(trainer::SurrogateOptions{});
  return RunStudy("parity", config, &advisor, &factory, &bus, &ps, nullptr,
                  /*num_workers=*/1, seed);
}

TEST(DistributedStudyTest, TcpStudyMatchesLoopbackBitForBit) {
  StudyStats tcp = RunOverTcp(ParityConfig(), /*seed=*/11);
  StudyStats local = RunOverLoopback(ParityConfig(), /*seed=*/11);
  ASSERT_EQ(tcp.trials.size(), local.trials.size());
  EXPECT_EQ(tcp.best_performance, local.best_performance);  // exact
  EXPECT_EQ(tcp.best_trial.Encode(), local.best_trial.Encode());
  for (size_t i = 0; i < tcp.trials.size(); ++i) {
    EXPECT_EQ(tcp.trials[i].trial_id, local.trials[i].trial_id);
    EXPECT_EQ(tcp.trials[i].performance, local.trials[i].performance);
  }
}

TEST(DistributedStudyTest, CollaborativeTcpStudySharesCheckpoints) {
  StudyConfig config;
  config.max_trials = 5;
  config.max_epochs_per_trial = 8;
  config.collaborative = true;
  config.delta = 0.0;
  config.num_workers = 1;

  HyperSpace space = MakeOptimizerSpace();
  RandomSearchAdvisor advisor(&space, config.max_trials, /*seed=*/5);
  auto hub = cluster::RpcBus::Listen({});
  ASSERT_TRUE(hub.ok());
  ps::ParameterServer ps;
  cluster::PsService service(hub.value().get(), &ps);
  ASSERT_TRUE(service.Start().ok());
  StudyMaster master("co", config, &advisor, hub.value().get(), nullptr);
  std::thread master_thread([&] {
    cluster::CancelToken token;
    master.Run(token);
  });

  cluster::RpcBusOptions opts;
  opts.port = hub.value()->port();
  auto leaf = cluster::RpcBus::Connect(opts);
  ASSERT_TRUE(leaf.ok());
  cluster::RemoteParameterStore remote(leaf.value().get(), "w0");
  trainer::SurrogateFactory factory(trainer::SurrogateOptions{});
  StudyWorker worker("co", "w0", config, &factory, leaf.value().get(),
                     &remote, /*seed=*/21);
  cluster::CancelToken token;
  worker.Run(token);
  master_thread.join();
  service.Stop();

  // kPut-gated publication flowed across the wire into the master's PS.
  auto best = ps.GetModel(master.best_scope());
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_GT(best.value().meta.accuracy, 0.0);
  EXPECT_EQ(master.stats().trials.size(), 5u);
}

TEST(DistributedStudyTest, KillStormBalancesLedger) {
  // The recovery storm: workers over real TCP leaves are repeatedly
  // "killed" mid-trial (their bus torn down, thread cancelled) and
  // replaced, exactly what the process supervisor does with SIGKILL. At
  // the end the ledger must balance: proposed == completed + lost.
  StudyConfig config;
  config.max_trials = 12;
  config.max_epochs_per_trial = 12;
  config.collaborative = true;
  config.delta = 0.0;
  config.num_workers = 2;

  HyperSpace space = MakeOptimizerSpace();
  RandomSearchAdvisor advisor(&space, config.max_trials, /*seed=*/17);
  auto hub = cluster::RpcBus::Listen({});
  ASSERT_TRUE(hub.ok());
  ps::ParameterServer ps;
  cluster::PsService service(hub.value().get(), &ps);
  ASSERT_TRUE(service.Start().ok());
  StudyMaster master("storm", config, &advisor, hub.value().get(), nullptr);
  std::thread master_thread([&] {
    cluster::CancelToken token;
    master.Run(token);
  });

  struct WorkerProc {
    std::unique_ptr<cluster::RpcBus> bus;
    std::unique_ptr<cluster::RemoteParameterStore> store;
    std::unique_ptr<trainer::SurrogateFactory> factory;
    std::unique_ptr<StudyWorker> body;
    std::unique_ptr<cluster::CancelToken> token;
    std::thread thread;
  };
  auto start_worker = [&](const std::string& name,
                          uint64_t seed) -> WorkerProc {
    WorkerProc p;
    cluster::RpcBusOptions opts;
    opts.port = hub.value()->port();
    auto leaf = cluster::RpcBus::Connect(opts);
    EXPECT_TRUE(leaf.ok());
    p.bus = std::move(leaf.value());
    p.store = std::make_unique<cluster::RemoteParameterStore>(p.bus.get(),
                                                              name);
    p.factory = std::make_unique<trainer::SurrogateFactory>(
        trainer::SurrogateOptions{});
    p.body = std::make_unique<StudyWorker>("storm", name, config,
                                           p.factory.get(), p.bus.get(),
                                           p.store.get(), seed);
    p.token = std::make_unique<cluster::CancelToken>();
    StudyWorker* body = p.body.get();
    cluster::CancelToken* token = p.token.get();
    p.thread = std::thread([body, token] { body->Run(*token); });
    return p;
  };
  auto kill_worker = [](WorkerProc& p) {
    // Mirror SIGKILL as closely as threads allow: sever the TCP link
    // first so in-flight sends fail, then cancel and join the body.
    p.bus->Shutdown();
    p.token->Cancel();
    p.thread.join();
    // Destroy in dependency order before the slot is reassigned: the
    // store's destructor talks to the bus, so it must go first (plain
    // move-assignment would free the bus before the store).
    p.body.reset();
    p.store.reset();
    p.bus.reset();
  };

  WorkerProc w0 = start_worker("w0", 1001);
  WorkerProc w1 = start_worker("w1", 1002);

  int kills = 0;
  Rng rng(5);
  // Storm: kill and replace w1 several times while the study runs.
  while (master.ledger().completed < config.max_trials / 2 && kills < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        30 + static_cast<int>(rng.Next64() % 50)));
    kill_worker(w1);
    ++kills;
    w1 = start_worker("w1", 2000 + kills);
  }

  w0.thread.join();
  w1.thread.join();
  master_thread.join();
  service.Stop();

  TrialLedger ledger = master.ledger();
  EXPECT_GE(kills, 1);
  EXPECT_EQ(ledger.active, 0);
  EXPECT_EQ(ledger.proposed, ledger.completed + ledger.lost);
  EXPECT_EQ(ledger.completed,
            static_cast<int64_t>(master.stats().trials.size()));
  // Every proposal the advisor issued is accounted for.
  EXPECT_EQ(ledger.proposed, config.max_trials);
}

TEST(DistributedStudyTest, MasterCheckpointSurvivesProcessBoundary) {
  // A full study checkpoints into a persisted BlobStore; a second store on
  // the same directory (the restarted master process) restores the ledger
  // and best-trial state.
  std::string dir = TempDir("master_ckpt");
  StudyConfig config = ParityConfig();
  config.checkpoint_every_events = 1;
  config.num_workers = 1;

  HyperSpace space = MakeOptimizerSpace();
  double best = 0.0;
  int64_t proposed = 0;
  {
    RandomSearchAdvisor advisor(&space, config.max_trials, /*seed=*/3);
    cluster::MessageBus bus;
    ps::ParameterServer ps;
    storage::BlobStore store(0, dir);
    trainer::SurrogateFactory factory(trainer::SurrogateOptions{});
    StudyStats stats = RunStudy("rec", config, &advisor, &factory, &bus, &ps,
                                &store, 1, /*seed=*/13);
    best = stats.best_performance;
    proposed = static_cast<int64_t>(stats.trials.size());
    ASSERT_GT(proposed, 0);
  }
  // "New process": fresh store object, fresh master, same directory.
  RandomSearchAdvisor advisor(&space, config.max_trials, /*seed=*/3);
  cluster::MessageBus bus;
  storage::BlobStore store(0, dir);
  StudyMaster restored("rec", config, &advisor, &bus, &store);
  ASSERT_TRUE(restored.RestoreFromCheckpoint().ok());
  EXPECT_EQ(restored.stats().best_performance, best);
  TrialLedger ledger = restored.ledger();
  EXPECT_EQ(ledger.proposed, proposed);
  EXPECT_EQ(ledger.completed + ledger.lost, proposed);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rafiki::tuning
