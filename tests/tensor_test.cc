#include "tensor/tensor.h"

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace rafiki {
namespace {

TEST(TensorTest, ZerosAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FromValues) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at2(0, 0), 1.0f);
  EXPECT_EQ(t.at2(0, 1), 2.0f);
  EXPECT_EQ(t.at2(1, 0), 3.0f);
  EXPECT_EQ(t.at2(1, 1), 4.0f);
}

TEST(TensorTest, FillAndFull) {
  Tensor t = Tensor::Full({3}, 2.5f);
  EXPECT_EQ(t.Sum(), 7.5f);
  t.Fill(-1.0f);
  EXPECT_EQ(t.Sum(), -3.0f);
}

TEST(TensorTest, RandnRespectsStd) {
  Rng rng(1);
  Tensor t = Tensor::Randn({10000}, rng, 0.5f);
  EXPECT_NEAR(t.Mean(), 0.0f, 0.02f);
  float var = t.SquaredNorm() / static_cast<float>(t.numel());
  EXPECT_NEAR(std::sqrt(var), 0.5f, 0.02f);
}

TEST(TensorTest, ElementwiseArithmetic) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  EXPECT_EQ(a.Add(b).Sum(), 66.0f);
  EXPECT_EQ(b.Sub(a).Sum(), 54.0f);
  EXPECT_EQ(a.Mul(2.0f).Sum(), 12.0f);
  EXPECT_EQ(a.Hadamard(b).Sum(), 10.0f + 40.0f + 90.0f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a.Sum(), 6.0f + 30.0f);
}

TEST(TensorTest, ReluClampsNegatives) {
  Tensor t({4}, {-1, 0, 2, -3});
  Tensor r = t.Relu();
  EXPECT_EQ(r.at(0), 0.0f);
  EXPECT_EQ(r.at(1), 0.0f);
  EXPECT_EQ(r.at(2), 2.0f);
  EXPECT_EQ(r.at(3), 0.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  t.Reshape({3, 2});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.at2(2, 1), 6.0f);
}

TEST(TensorTest, MatMulKnownResult) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at2(0, 0), 58.0f);
  EXPECT_EQ(c.at2(0, 1), 64.0f);
  EXPECT_EQ(c.at2(1, 0), 139.0f);
  EXPECT_EQ(c.at2(1, 1), 154.0f);
}

TEST(TensorTest, TransposedMatMulsAgree) {
  Rng rng(2);
  Tensor a = Tensor::Randn({4, 5}, rng);
  Tensor b = Tensor::Randn({5, 3}, rng);
  Tensor c = MatMul(a, b);
  // A^T with A' = A^T-stored: MatMulTransA(a', b) where a'[k][m].
  Tensor at({5, 4});
  for (int64_t i = 0; i < 4; ++i)
    for (int64_t j = 0; j < 5; ++j) at.at2(j, i) = a.at2(i, j);
  Tensor c2 = MatMulTransA(at, b);
  Tensor bt({3, 5});
  for (int64_t i = 0; i < 5; ++i)
    for (int64_t j = 0; j < 3; ++j) bt.at2(j, i) = b.at2(i, j);
  Tensor c3 = MatMulTransB(a, bt);
  for (int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c.at(i), c2.at(i), 1e-4f);
    EXPECT_NEAR(c.at(i), c3.at(i), 1e-4f);
  }
}

TEST(TensorTest, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Tensor t = Tensor::Randn({5, 7}, rng, 3.0f);
  Tensor s = t.SoftmaxRows();
  for (int64_t r = 0; r < 5; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < 7; ++c) {
      float p = s.at2(r, c);
      EXPECT_GE(p, 0.0f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(TensorTest, SoftmaxNumericallyStable) {
  Tensor t({1, 3}, {1000.0f, 1001.0f, 1002.0f});
  Tensor s = t.SoftmaxRows();
  EXPECT_FALSE(std::isnan(s.at(0)));
  EXPECT_GT(s.at2(0, 2), s.at2(0, 1));
}

TEST(TensorTest, ArgmaxRows) {
  Tensor t({2, 3}, {0, 5, 1, 9, 2, 3});
  std::vector<int64_t> idx = t.ArgmaxRows();
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(TensorTest, Reductions) {
  Tensor t({4}, {-2, 1, 3, -1});
  EXPECT_EQ(t.Sum(), 1.0f);
  EXPECT_EQ(t.Mean(), 0.25f);
  EXPECT_EQ(t.MaxAbs(), 3.0f);
  EXPECT_EQ(t.SquaredNorm(), 4.0f + 1.0f + 9.0f + 1.0f);
}

TEST(TensorTest, ShapeHelpers) {
  EXPECT_EQ(ShapeNumel({3, 4, 5}), 60);
  EXPECT_EQ(ShapeNumel({}), 0);
  EXPECT_EQ(ShapeToString({3, 256, 256}), "(3, 256, 256)");
}

}  // namespace
}  // namespace rafiki
