#include "model/bandit_selector.h"

#include "common/rng.h"
#include "gtest/gtest.h"
#include "model/profile.h"

namespace rafiki::model {
namespace {

TEST(BanditSelectorTest, ExploresEveryArmFirst) {
  BanditModelSelector bandit({"a", "b", "c"});
  EXPECT_EQ(bandit.NextArm(), 0u);
  bandit.Record(0, 0.9);
  EXPECT_EQ(bandit.NextArm(), 1u);
  bandit.Record(1, 0.1);
  EXPECT_EQ(bandit.NextArm(), 2u);
  bandit.Record(2, 0.1);
  EXPECT_EQ(bandit.TotalPulls(), 3);
}

TEST(BanditSelectorTest, ConvergesToBestArm) {
  // Arms pay noisy accuracies around distinct means: UCB must spend most
  // pulls on the best one (the Ease.ml §4.1 behaviour).
  BanditModelSelector bandit({"weak", "mid", "strong"}, /*exploration=*/0.5);
  Rng rng(5);
  const double means[] = {0.60, 0.70, 0.80};
  for (int t = 0; t < 300; ++t) {
    size_t arm = bandit.NextArm();
    bandit.Record(arm, means[arm] + rng.Gaussian(0.0, 0.02));
  }
  EXPECT_GT(bandit.Pulls(2), bandit.Pulls(0) * 3);
  EXPECT_GT(bandit.Pulls(2), bandit.Pulls(1));
  EXPECT_EQ(bandit.Ranking()[0], 2u);
  EXPECT_NEAR(bandit.MeanPerformance(2), 0.80, 0.02);
}

TEST(BanditSelectorTest, UnderPerformersGetFewChances) {
  // "After many trials, the chance of under-performed models would be
  // decreased" (§4.1).
  BanditModelSelector bandit({"bad", "good"}, 0.5);
  Rng rng(6);
  for (int t = 0; t < 200; ++t) {
    size_t arm = bandit.NextArm();
    bandit.Record(arm, (arm == 1 ? 0.85 : 0.3) + rng.Gaussian(0.0, 0.02));
  }
  EXPECT_LT(bandit.Pulls(0), 40);
}

TEST(BanditSelectorTest, RankingAgreesWithRegistryOnCatalog) {
  // On the real catalog (deterministic accuracies), the bandit's final
  // ranking and Rafiki's simple sort agree on the best model — the paper's
  // argument for skipping the bandit machinery when performance is
  // consistent across datasets.
  std::vector<std::string> names;
  std::vector<double> accuracy;
  for (const ModelProfile& p : ImageNetCatalog()) {
    names.push_back(p.name);
    accuracy.push_back(p.top1_accuracy);
  }
  BanditModelSelector bandit(names, 0.3);
  Rng rng(7);
  for (int t = 0; t < 400; ++t) {
    size_t arm = bandit.NextArm();
    bandit.Record(arm, accuracy[arm] + rng.Gaussian(0.0, 0.01));
  }
  EXPECT_EQ(bandit.name(bandit.Ranking()[0]), "nasnet_large");
}

}  // namespace
}  // namespace rafiki::model
