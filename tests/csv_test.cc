#include "data/csv.h"

#include "gtest/gtest.h"

namespace rafiki::data {
namespace {

TEST(CsvTest, RoundTripsSyntheticDataset) {
  SyntheticTaskOptions options;
  options.num_classes = 3;
  options.samples_per_class = 10;
  options.input_dim = 5;
  Dataset d = MakeSyntheticTask(options);
  std::string csv = DatasetToCsv(d);
  Result<Dataset> back = DatasetFromCsv(csv);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), d.size());
  EXPECT_EQ(back->num_classes, 3);
  EXPECT_EQ(back->labels, d.labels);
  for (int64_t i = 0; i < d.x.numel(); ++i) {
    EXPECT_NEAR(back->x.at(i), d.x.at(i), 1e-6f);
  }
}

TEST(CsvTest, ParsesWithAndWithoutHeader) {
  const char* with_header = "x0,x1,label\n1.0,2.0,0\n3.0,4.0,1\n";
  const char* without = "1.0,2.0,0\n3.0,4.0,1\n";
  for (const char* csv : {with_header, without}) {
    Result<Dataset> d = DatasetFromCsv(csv);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    EXPECT_EQ(d->size(), 2);
    EXPECT_EQ(d->x.dim(1), 2);
    EXPECT_EQ(d->num_classes, 2);
    EXPECT_EQ(d->x.at2(1, 0), 3.0f);
  }
}

TEST(CsvTest, RejectsMalformedInput) {
  EXPECT_FALSE(DatasetFromCsv("").ok());
  EXPECT_FALSE(DatasetFromCsv("x0,label\n").ok());          // header only
  EXPECT_FALSE(DatasetFromCsv("1.0\n").ok());               // no label col
  EXPECT_FALSE(DatasetFromCsv("1.0,2.0,0\n1.0,1\n").ok());  // ragged
  EXPECT_FALSE(DatasetFromCsv("1.0,abc,0\n").ok());         // bad feature
  EXPECT_FALSE(DatasetFromCsv("1.0,2.0,-1\n").ok());        // bad label
  EXPECT_FALSE(DatasetFromCsv("1.0,2.0,zzz\n").ok());
  // Header-looking line mid-file is an error, not silently skipped.
  EXPECT_FALSE(DatasetFromCsv("1.0,2.0,0\nx0,x1,label\n").ok());
}

TEST(CsvTest, ExpectedClassesEnforced) {
  EXPECT_TRUE(DatasetFromCsv("1,2,1\n", /*expected_classes=*/2).ok());
  auto bad = DatasetFromCsv("1,2,5\n", /*expected_classes=*/2);
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  // Inference without expectation: classes = max label + 1.
  auto d = DatasetFromCsv("1,2,7\n");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_classes, 8);
}

TEST(CsvTest, BlankLinesIgnored) {
  auto d = DatasetFromCsv("\n1.0,0\n\n2.0,1\n\n");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 2);
}

}  // namespace
}  // namespace rafiki::data
