// The live serving tier: concurrent Submit batching (Algorithm 3 on real
// requests), lifecycle safety (deploy/undeploy races), bounded-queue
// backpressure, and per-job metric conservation. The stress tests here are
// the ones the TSan CI matrix exists for.

#include "serving/inference_runtime.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "nn/layer.h"
#include "ps/parameter_server.h"
#include "rafiki/rafiki.h"
#include "serving/greedy_batch.h"
#include "serving/rl_scheduler.h"

namespace rafiki::serving {
namespace {

/// A deterministic servable: y = x W with W = I, so argmax(features) is the
/// predicted label. `negate` flips the sign (argmin wins) to build
/// disagreeing ensemble members.
ServableModel MakeIdentityModel(int64_t dim, double accuracy,
                                const std::string& name,
                                bool negate = false) {
  Rng rng(1);
  auto linear = std::make_unique<nn::Linear>(dim, dim, /*init_std=*/0.0f,
                                             rng, "fc0");
  Tensor& weight = linear->Params()[0]->value;
  for (int64_t i = 0; i < dim; ++i) {
    weight.at2(i, i) = negate ? -1.0f : 1.0f;
  }
  ServableModel model;
  model.net.Add(std::move(linear));
  model.accuracy = accuracy;
  model.name = name;
  return model;
}

Tensor OneHot(int64_t dim, int64_t hot) {
  Tensor t({1, dim});
  t.at(hot) = 1.0f;
  return t;
}

TEST(InferenceRuntimeTest, SingleSubmitServesCorrectLabel) {
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(4, 0.9, "id"));
  RuntimeOptions options;
  options.tau = 0.05;
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());

  auto submitted = runtime.Submit("j", OneHot(4, 2));
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  Result<EnsemblePrediction> answer = submitted->get();
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->label, 2);
  ASSERT_EQ(answer->votes.size(), 1u);
  EXPECT_EQ(answer->votes[0], 2);

  auto metrics = runtime.Metrics("j");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->arrived, 1);
  EXPECT_EQ(metrics->processed, 1);
  EXPECT_EQ(metrics->dropped, 0);
  EXPECT_GT(metrics->mean_latency, 0.0);
  ASSERT_TRUE(runtime.Undeploy("j").ok());
  EXPECT_TRUE(runtime.Metrics("j").status().IsNotFound());
}

TEST(InferenceRuntimeTest, SubmitValidatesShapeAndJob) {
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(4, 0.9, "id"));
  ASSERT_TRUE(runtime.Deploy("j", std::move(models)).ok());
  EXPECT_TRUE(runtime.Submit("ghost", OneHot(4, 0)).status().IsNotFound());
  EXPECT_TRUE(
      runtime.Submit("j", OneHot(7, 0)).status().IsInvalidArgument());
  Tensor rank3({2, 2, 2});
  EXPECT_TRUE(runtime.Submit("j", rank3).status().IsInvalidArgument());
  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

TEST(InferenceRuntimeTest, BurstOfSubmitsFormsRealBatches) {
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(8, 0.9, "id"));
  RuntimeOptions options;
  options.tau = 0.25;  // roomy SLO so the whole burst queues before a flush
  options.batch_sizes = {1, 2, 4, 8, 16, 32};
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());

  constexpr int kRequests = 64;
  std::vector<std::future<Result<EnsemblePrediction>>> futures;
  for (int i = 0; i < kRequests; ++i) {
    auto submitted = runtime.Submit("j", OneHot(8, i % 8));
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(*submitted));
  }
  for (int i = 0; i < kRequests; ++i) {
    Result<EnsemblePrediction> answer = futures[i].get();
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_EQ(answer->label, i % 8) << "request " << i;
  }

  auto metrics = runtime.Metrics("j");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->arrived, kRequests);
  EXPECT_EQ(metrics->processed, kRequests);
  EXPECT_EQ(metrics->dropped, 0);
  // The point of the runtime: the burst is served in batches, not 64
  // single-request forwards.
  EXPECT_GT(metrics->max_batch, 1) << "no batching happened";
  EXPECT_LT(metrics->batches, kRequests);
  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

TEST(InferenceRuntimeTest, ConcurrentSubmittersAllServedAndBatched) {
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(8, 0.9, "id"));
  RuntimeOptions options;
  options.tau = 0.05;  // tight SLO: partial batches flush on deadline
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> correct{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&runtime, &correct, t] {
      for (int i = 0; i < kPerThread; ++i) {
        int64_t hot = (t + i) % 8;
        auto submitted = runtime.Submit("j", OneHot(8, hot));
        ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
        Result<EnsemblePrediction> answer = submitted->get();
        ASSERT_TRUE(answer.ok()) << answer.status().ToString();
        if (answer->label == hot) ++correct;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(correct.load(), kThreads * kPerThread) << "wrong answers";

  auto metrics = runtime.Metrics("j");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->arrived, kThreads * kPerThread);
  EXPECT_EQ(metrics->processed, kThreads * kPerThread);  // nobody starved
  EXPECT_EQ(metrics->dropped, 0);
  // Concurrent waiters pile up while a deadline flush is pending, so real
  // multi-request batches must have formed.
  EXPECT_GT(metrics->max_batch, 1);
  EXPECT_GT(metrics->mean_batch, 1.0);
  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

TEST(InferenceRuntimeTest, EnsembleMajorityVoteAndAccuracyTieBreak) {
  {
    // Two identity models outvote one negated model.
    InferenceRuntime runtime;
    std::vector<ServableModel> models;
    models.push_back(MakeIdentityModel(4, 0.6, "a"));
    models.push_back(MakeIdentityModel(4, 0.5, "b"));
    models.push_back(MakeIdentityModel(4, 0.9, "c", /*negate=*/true));
    ASSERT_TRUE(runtime.Deploy("e", std::move(models)).ok());
    auto submitted = runtime.Submit("e", OneHot(4, 1));
    ASSERT_TRUE(submitted.ok());
    Result<EnsemblePrediction> answer = submitted->get();
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(answer->label, 1);  // majority beats the accurate dissenter
    EXPECT_EQ(answer->votes.size(), 3u);
    ASSERT_TRUE(runtime.Undeploy("e").ok());
  }
  {
    // 1-1 tie: the paper's tie-break picks the more accurate model.
    InferenceRuntime runtime;
    std::vector<ServableModel> models;
    models.push_back(MakeIdentityModel(4, 0.5, "weak"));
    models.push_back(MakeIdentityModel(4, 0.9, "strong", /*negate=*/true));
    ASSERT_TRUE(runtime.Deploy("e", std::move(models)).ok());
    auto submitted = runtime.Submit("e", OneHot(4, 1));
    ASSERT_TRUE(submitted.ok());
    Result<EnsemblePrediction> answer = submitted->get();
    ASSERT_TRUE(answer.ok());
    // The negated identity ranks label 1 last; its argmax is 0.
    EXPECT_EQ(answer->label, 0) << "tie must break toward higher accuracy";
    ASSERT_TRUE(runtime.Undeploy("e").ok());
  }
}

TEST(InferenceRuntimeTest, BoundedQueueDropsWhenFull) {
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(4, 0.9, "id"));
  RuntimeOptions options;
  options.tau = 30.0;           // no deadline pressure during the test
  options.batch_sizes = {8, 16};  // min batch above capacity: nothing flushes
  options.queue_capacity = 4;
  options.calibrate = false;
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());

  std::vector<std::future<Result<EnsemblePrediction>>> queued;
  int rejected = 0;
  for (int i = 0; i < 6; ++i) {
    auto submitted = runtime.Submit("j", OneHot(4, 0));
    if (submitted.ok()) {
      queued.push_back(std::move(*submitted));
    } else {
      EXPECT_TRUE(submitted.status().IsUnavailable())
          << submitted.status().ToString();
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(queued.size(), 4u);

  auto metrics = runtime.Metrics("j");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->arrived, 6);
  EXPECT_EQ(metrics->dropped, 2);
  EXPECT_EQ(metrics->processed, 0);

  // Undeploy fails the queued requests and counts them dropped, closing
  // the books: arrived == processed + dropped.
  ASSERT_TRUE(runtime.Undeploy("j").ok());
  for (auto& future : queued) {
    EXPECT_TRUE(future.get().status().IsUnavailable());
  }
}

TEST(InferenceRuntimeTest, ConcurrentSubmitStormConservesAccounting) {
  // Regression for the lock-free submit path: with many producers racing
  // the MPSC ring (and the bounded-queue admission gate dropping under
  // pressure), the books must still balance exactly at quiescence:
  //
  //   arrived == processed + dropped + expired,  queue_depth == 0
  //
  // where every term is cross-checked against caller-side counts. The old
  // mutex+condvar queue made this trivially true; the ring + atomic
  // counters have to earn it.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(4, 0.9, "id"));
  RuntimeOptions options;
  options.tau = 0.0005;  // flush aggressively so the storm makes progress
  options.queue_capacity = 16;  // small: the admission gate really drops
  options.calibrate = false;
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());

  std::atomic<long> accepted{0};
  std::atomic<long> rejected{0};
  std::atomic<long> served{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto submitted = runtime.Submit("j", OneHot(4, 1));
        if (!submitted.ok()) {
          ASSERT_TRUE(submitted.status().IsUnavailable())
              << submitted.status().ToString();
          ++rejected;
          continue;
        }
        ++accepted;
        // Resolve inline: keeps a lid on in-flight futures and guarantees
        // every accepted request is fully processed before the thread
        // exits (nothing is racing Undeploy here, so no drops past this
        // point).
        Result<EnsemblePrediction> answer = submitted->get();
        ASSERT_TRUE(answer.ok()) << answer.status().ToString();
        ASSERT_EQ(answer->label, 1);
        ++served;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  auto metrics = runtime.Metrics("j");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->arrived, static_cast<long>(kThreads) * kPerThread);
  EXPECT_EQ(metrics->arrived, accepted.load() + rejected.load());
  EXPECT_EQ(metrics->processed, served.load());
  EXPECT_EQ(metrics->dropped, rejected.load());
  EXPECT_EQ(metrics->expired, 0);
  EXPECT_EQ(metrics->arrived,
            metrics->processed + metrics->dropped + metrics->expired);
  EXPECT_EQ(metrics->queue_depth, 0);
  EXPECT_GT(served.load(), 0);
  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

TEST(InferenceRuntimeTest, ConcurrentQueryUndeployStress) {
  // Regression for the facade's old use-after-free: queries racing
  // undeploy must only ever observe clean errors. Run it under
  // -DRAFIKI_SANITIZE=thread to check the memory model too.
  InferenceRuntime runtime;
  constexpr int kRounds = 10;
  constexpr int kThreads = 6;
  for (int round = 0; round < kRounds; ++round) {
    std::string id = "stress" + std::to_string(round);
    std::vector<ServableModel> models;
    models.push_back(MakeIdentityModel(8, 0.9, "id"));
    RuntimeOptions options;
    options.tau = 0.01;
    ASSERT_TRUE(runtime.Deploy(id, std::move(models), options).ok());

    std::atomic<bool> gone{false};
    std::atomic<int> served{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&runtime, &id, &gone, &served] {
        while (!gone.load()) {
          auto submitted = runtime.Submit(id, OneHot(8, 3));
          if (!submitted.ok()) {
            ASSERT_TRUE(submitted.status().IsNotFound() ||
                        submitted.status().IsUnavailable())
                << submitted.status().ToString();
            continue;
          }
          Result<EnsemblePrediction> answer = submitted->get();
          if (answer.ok()) {
            ASSERT_EQ(answer->label, 3);
            ++served;
          } else {
            ASSERT_TRUE(answer.status().IsUnavailable())
                << answer.status().ToString();
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    ASSERT_TRUE(runtime.Undeploy(id).ok());
    gone.store(true);
    for (std::thread& t : threads) t.join();
    EXPECT_TRUE(runtime.Submit(id, OneHot(8, 0)).status().IsNotFound());
    EXPECT_GT(served.load(), 0) << "round " << round << " served nothing";
  }
}

TEST(InferenceRuntimeTest, RuntimeDestructorStopsLiveJobs) {
  std::future<Result<EnsemblePrediction>> orphan;
  {
    InferenceRuntime runtime;
    std::vector<ServableModel> models;
    models.push_back(MakeIdentityModel(4, 0.9, "id"));
    RuntimeOptions options;
    options.tau = 30.0;
    options.batch_sizes = {8};  // nothing flushes: request stays queued
    options.calibrate = false;
    ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());
    auto submitted = runtime.Submit("j", OneHot(4, 0));
    ASSERT_TRUE(submitted.ok());
    orphan = std::move(*submitted);
  }
  EXPECT_TRUE(orphan.get().status().IsUnavailable());
}

/// Facade-level regression: the original bug was Rafiki::QueryBatch
/// dereferencing an InferenceJob* after releasing mu_ while Undeploy
/// erased it. Deploy from a hand-built PS checkpoint (no training needed)
/// and race QueryBatch/Query against Undeploy.
TEST(RafikiServingLifecycleTest, QueryBatchRacingUndeployStaysClean) {
  api::Rafiki rafiki;
  ps::ModelCheckpoint ckpt;
  Tensor weight({4, 3});
  for (int64_t i = 0; i < 3; ++i) weight.at2(i, i) = 1.0f;
  ckpt.params.emplace_back("fc0/weight", weight);
  ckpt.params.emplace_back("fc0/bias", Tensor({1, 3}));
  ckpt.meta.accuracy = 0.9;
  ASSERT_TRUE(rafiki.parameter_server().PutModel("study/fake/best", ckpt).ok());
  api::ModelHandle handle;
  handle.scope = "study/fake/best";
  handle.model_name = "mlp";
  handle.accuracy = 0.9;

  Tensor rows({3, 4});
  rows.at2(0, 0) = 1.0f;
  rows.at2(1, 1) = 1.0f;
  rows.at2(2, 2) = 1.0f;

  constexpr int kRounds = 8;
  constexpr int kThreads = 4;
  for (int round = 0; round < kRounds; ++round) {
    serving::RuntimeOptions options;
    options.tau = 0.01;
    auto deployed = rafiki.Deploy({handle}, options);
    ASSERT_TRUE(deployed.ok()) << deployed.status().ToString();
    std::string id = *deployed;

    std::atomic<bool> gone{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&rafiki, &rows, &id, &gone] {
        while (!gone.load()) {
          auto batch = rafiki.QueryBatch(id, rows);
          if (batch.ok()) {
            ASSERT_EQ(batch->size(), 3u);
            EXPECT_EQ((*batch)[0].label, 0);
            EXPECT_EQ((*batch)[1].label, 1);
            EXPECT_EQ((*batch)[2].label, 2);
          } else {
            ASSERT_TRUE(batch.status().IsNotFound() ||
                        batch.status().IsUnavailable())
                << batch.status().ToString();
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(rafiki.Undeploy(id).ok());
    gone.store(true);
    for (std::thread& t : threads) t.join();
    EXPECT_TRUE(rafiki.Query(id, rows).status().IsNotFound());
  }
}

TEST(InferenceRuntimeTest, SubmitAsyncDeliversCallback) {
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(4, 0.9, "id"));
  RuntimeOptions options;
  options.tau = 0.05;
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());

  std::promise<Result<EnsemblePrediction>> promise;
  std::future<Result<EnsemblePrediction>> future = promise.get_future();
  Status submitted = runtime.SubmitAsync(
      "j", OneHot(4, 2), [&promise](Result<EnsemblePrediction> answer) {
        promise.set_value(std::move(answer));
      });
  ASSERT_TRUE(submitted.ok()) << submitted.ToString();
  Result<EnsemblePrediction> answer = future.get();
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->label, 2);

  // Rejected submissions return a status and never run the callback.
  EXPECT_TRUE(runtime
                  .SubmitAsync("ghost", OneHot(4, 0),
                               [](Result<EnsemblePrediction>) { FAIL(); })
                  .IsNotFound());
  EXPECT_TRUE(runtime
                  .SubmitAsync("j", OneHot(7, 0),
                               [](Result<EnsemblePrediction>) { FAIL(); })
                  .IsInvalidArgument());
  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

TEST(InferenceRuntimeTest, QueueDeadlineExpiresOverdueRequests) {
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(4, 0.9, "id"));
  RuntimeOptions options;
  // A tau no request can meet: everything must expire with
  // kDeadlineExceeded instead of being forwarded through the model.
  options.tau = 1e-9;
  options.expire_overdue = true;
  options.calibrate = false;
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());

  constexpr int kRequests = 16;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Status> outcomes;
  for (int i = 0; i < kRequests; ++i) {
    Status submitted = runtime.SubmitAsync(
        "j", OneHot(4, i % 4), [&](Result<EnsemblePrediction> answer) {
          std::lock_guard<std::mutex> lock(mu);
          outcomes.push_back(answer.status());
          cv.notify_all();
        });
    ASSERT_TRUE(submitted.ok()) << submitted.ToString();
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10), [&] {
      return outcomes.size() == kRequests;
    }));
    for (const Status& s : outcomes) {
      EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
    }
  }

  auto metrics = runtime.Metrics("j");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->arrived, kRequests);
  EXPECT_EQ(metrics->expired, kRequests);
  EXPECT_EQ(metrics->overdue, kRequests);  // expiries count as overdue
  EXPECT_EQ(metrics->processed, 0);
  EXPECT_EQ(metrics->dropped, 0);
  // Conservation with the expired term.
  EXPECT_EQ(metrics->arrived, metrics->processed + metrics->dropped +
                                  metrics->expired + metrics->queue_depth);
  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

TEST(InferenceRuntimeTest, GenerousDeadlineDoesNotExpire) {
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(4, 0.9, "id"));
  RuntimeOptions options;
  options.tau = 30.0;  // nothing plausibly waits this long
  options.expire_overdue = true;
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());
  auto submitted = runtime.Submit("j", OneHot(4, 1));
  ASSERT_TRUE(submitted.ok());
  Result<EnsemblePrediction> answer = submitted->get();
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->label, 1);
  auto metrics = runtime.Metrics("j");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->expired, 0);
  EXPECT_EQ(metrics->processed, 1);
  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

TEST(RafikiServingLifecycleTest, FacadeMetricsReportBatching) {
  api::Rafiki rafiki;
  ps::ModelCheckpoint ckpt;
  Tensor weight({4, 3});
  for (int64_t i = 0; i < 3; ++i) weight.at2(i, i) = 1.0f;
  ckpt.params.emplace_back("fc0/weight", weight);
  ckpt.params.emplace_back("fc0/bias", Tensor({1, 3}));
  ckpt.meta.accuracy = 0.9;
  ASSERT_TRUE(rafiki.parameter_server().PutModel("study/fake/best", ckpt).ok());
  api::ModelHandle handle;
  handle.scope = "study/fake/best";
  handle.model_name = "mlp";
  handle.accuracy = 0.9;

  auto deployed = rafiki.Deploy({handle});
  ASSERT_TRUE(deployed.ok());
  Tensor rows({40, 4});
  for (int64_t r = 0; r < 40; ++r) rows.at2(r, r % 3) = 1.0f;
  auto batch = rafiki.QueryBatch(*deployed, rows);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 40u);

  auto metrics = rafiki.InferenceMetrics(*deployed);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->arrived, 40);
  EXPECT_EQ(metrics->processed, 40);
  EXPECT_GT(metrics->max_batch, 1) << "bulk query did not batch";
  EXPECT_TRUE(rafiki.Undeploy(*deployed).ok());
  EXPECT_TRUE(rafiki.InferenceMetrics(*deployed).status().IsNotFound());
}

/// Forwards every policy call to a shared RlSchedulerPolicy, so a test can
/// keep inspecting the agent after the job (which owns the forwarder) is
/// undeployed. Safe: Undeploy joins the dispatcher, so the test's later
/// reads happen-after every Decide/Feedback.
class SharedRlPolicy : public SchedulerPolicy {
 public:
  explicit SharedRlPolicy(std::shared_ptr<RlSchedulerPolicy> inner)
      : inner_(std::move(inner)) {}
  ServingAction Decide(const ServingObs& obs) override {
    return inner_->Decide(obs);
  }
  void Feedback(const ServingObs& obs, const ServingAction& action,
                double reward) override {
    inner_->Feedback(obs, action, reward);
  }
  bool learns() const override { return true; }
  std::string name() const override { return inner_->name(); }

 private:
  std::shared_ptr<RlSchedulerPolicy> inner_;
};

TEST(InferenceRuntimeTest, PolicyFactoryReceivesCalibratedInit) {
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(4, 0.85, "id"));
  RuntimeOptions options;
  options.tau = 0.25;
  options.beta = 2.0;
  options.batch_sizes = {2, 8};
  options.calibrate = false;
  PolicyInit seen;
  options.policy_factory =
      [&seen](const PolicyInit& init) -> std::unique_ptr<SchedulerPolicy> {
    seen = init;
    return std::make_unique<GreedyBatchPolicy>(0,
                                               init.backoff_delta_fraction);
  };
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());
  EXPECT_EQ(seen.num_models, 1u);
  EXPECT_EQ(seen.batch_sizes, (std::vector<int64_t>{2, 8}));
  ASSERT_EQ(seen.accuracies.size(), 1u);
  EXPECT_DOUBLE_EQ(seen.accuracies[0], 0.85);
  EXPECT_DOUBLE_EQ(seen.tau, 0.25);
  EXPECT_DOUBLE_EQ(seen.beta, 2.0);
  ASSERT_TRUE(runtime.Undeploy("j").ok());

  // A factory returning no policy is a deploy-time error, not a crash.
  std::vector<ServableModel> models2;
  models2.push_back(MakeIdentityModel(4, 0.85, "id"));
  options.policy_factory = [](const PolicyInit&) {
    return std::unique_ptr<SchedulerPolicy>();
  };
  EXPECT_TRUE(runtime.Deploy("j2", std::move(models2), options)
                  .status()
                  .IsInvalidArgument());
}

TEST(InferenceRuntimeTest, RewardAccountingMatchesEq7OnCleanPath) {
  // With a generous tau nothing is overdue, so the cumulative Equation 7
  // reward must be exactly a * processed (and accuracy_sum a * processed),
  // independent of how the requests were batched.
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(4, 0.9, "id"));
  RuntimeOptions options;
  options.tau = 30.0;
  // B = {1}: greedy dispatches every request immediately (no wait-backoff),
  // so the test is fast and the batching split is fully determined.
  options.batch_sizes = {1};
  options.calibrate = false;
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());
  for (int i = 0; i < 10; ++i) {
    auto submitted = runtime.Submit("j", OneHot(4, i % 4));
    ASSERT_TRUE(submitted.ok());
    ASSERT_TRUE(submitted->get().ok());
  }
  auto metrics = runtime.Metrics("j");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->policy, "greedy");
  EXPECT_EQ(metrics->learn_steps, 0);  // greedy does not learn
  EXPECT_EQ(metrics->processed, 10);
  EXPECT_EQ(metrics->reward_overdue, 0);
  EXPECT_EQ(metrics->reward_pending_overdue, 0);
  EXPECT_NEAR(metrics->reward_sum, 0.9 * 10, 1e-9);
  EXPECT_NEAR(metrics->accuracy_sum, 0.9 * 10, 1e-9);
  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

TEST(InferenceRuntimeTest, RlPolicyStormConservesAccountingAndExpiryReward) {
  // Satellite regression (live vs simulator reward accounting): under an
  // RL policy with expire_overdue, a 504-expired request must enter the
  // reward stream as overdue EXACTLY once — charged to the next dispatched
  // batch — never double-counted, never dropped. The invariant
  //   overdue == reward_overdue + reward_pending_overdue
  // holds at quiescence together with full conservation.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  // A wide model so batches take real time and queue waits genuinely trip
  // the deadline under the storm.
  constexpr int64_t kDim = 256;
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(kDim, 0.9, "wide"));
  RuntimeOptions options;
  options.tau = 0.002;
  options.expire_overdue = true;
  options.calibrate = false;
  options.policy_factory = MakeRlSchedulerFactory();
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());

  std::atomic<long> accepted{0};
  std::atomic<long> rejected{0};
  std::atomic<long> served{0};
  std::atomic<long> expired_seen{0};
  std::atomic<long> answered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        Status submitted = runtime.SubmitAsync(
            "j", OneHot(kDim, i % kDim),
            [&](Result<EnsemblePrediction> answer) {
              if (answer.ok()) {
                ++served;
              } else {
                EXPECT_EQ(answer.status().code(),
                          StatusCode::kDeadlineExceeded)
                    << answer.status().ToString();
                ++expired_seen;
              }
              ++answered;
            });
        if (submitted.ok()) {
          ++accepted;
        } else {
          ASSERT_TRUE(submitted.IsUnavailable()) << submitted.ToString();
          ++rejected;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Quiesce: every accepted request gets its continuation.
  for (int spin = 0; spin < 20000 && answered.load() < accepted.load();
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(answered.load(), accepted.load());

  auto metrics = runtime.Metrics("j");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->policy, "rl");
  EXPECT_EQ(metrics->arrived, static_cast<long>(kThreads) * kPerThread);
  EXPECT_EQ(metrics->processed, served.load());
  EXPECT_EQ(metrics->expired, expired_seen.load());
  EXPECT_EQ(metrics->dropped, rejected.load());
  EXPECT_EQ(metrics->queue_depth, 0);
  EXPECT_EQ(metrics->arrived,
            metrics->processed + metrics->dropped + metrics->expired);
  // The storm is designed to actually expire requests; if this ever goes
  // to zero the regression below is vacuous.
  EXPECT_GT(metrics->expired, 0);
  // Exactly-once expiry charging holds at this quiescent point even if the
  // storm expired everything (possible under sanitizer slowdown).
  EXPECT_EQ(metrics->overdue,
            metrics->reward_overdue + metrics->reward_pending_overdue);
  EXPECT_GE(metrics->reward_pending_overdue, 0);

  // Quiet trickle: an idle dispatcher answers a lone request well inside
  // tau regardless of how slow the build is, and that first dispatched
  // batch must charge the storm's expiry backlog into its reward — after
  // which NOTHING is left pending. Retries tolerate scheduler hiccups.
  bool trickled = false;
  for (int i = 0; i < 200 && !trickled; ++i) {
    auto one = runtime.Submit("j", OneHot(kDim, 0));
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    trickled = one->get().ok();
  }
  ASSERT_TRUE(trickled) << "no request survived an idle dispatcher";

  metrics = runtime.Metrics("j");
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->processed, 0);
  EXPECT_GT(metrics->learn_steps, 0);
  EXPECT_EQ(metrics->reward_pending_overdue, 0);
  EXPECT_EQ(metrics->overdue, metrics->reward_overdue);
  EXPECT_EQ(metrics->arrived,
            metrics->processed + metrics->dropped + metrics->expired);
  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

TEST(InferenceRuntimeTest, RlSingleModelLiveConvergesToEq7Optimum) {
  // Satellite: |M| = 1 mask collapse (§7.2.1) on the LIVE runtime. With a
  // zero-latency profile and a generous tau nothing is overdue, so the
  // Equation 7 reward is a * min(b, queue) and the optimum at a full queue
  // of 8 is the largest batch. Train online (seeded exploration) against a
  // fixed arrival trace of 8-request rounds, then assert the greedy
  // (explore=false) action at a full-queue state converged to it.
  const std::vector<int64_t> kBatches = {1, 2, 4, 8};
  RlSchedulerOptions rl;
  rl.agent.seed = 11;
  rl.agent.update_every = 16;
  rl.agent.policy_lr = 5e-3;
  rl.agent.value_lr = 5e-3;
  rl.throughput_shaping = 0.0;  // pure Equation 7
  auto shared = std::make_shared<RlSchedulerPolicy>(
      /*num_models=*/1, kBatches, /*accuracy_table=*/nullptr, rl);

  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(4, 0.9, "id"));
  RuntimeOptions options;
  options.tau = 10.0;
  options.batch_sizes = kBatches;
  options.calibrate = false;
  options.policy_factory = [shared](const PolicyInit&) {
    return std::make_unique<SharedRlPolicy>(shared);
  };
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());

  constexpr int kRounds = 400;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::future<Result<EnsemblePrediction>>> futures;
    for (int i = 0; i < 8; ++i) {
      auto submitted = runtime.Submit("j", OneHot(4, i % 4));
      ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
      futures.push_back(std::move(*submitted));
    }
    for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  }
  auto metrics = runtime.Metrics("j");
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->learn_steps, 100);
  EXPECT_GT(metrics->reward_sum, 0.0);
  ASSERT_TRUE(runtime.Undeploy("j").ok());  // joins the dispatcher

  // Evaluate the learned policy greedily at a full-queue state.
  shared->set_explore(false);
  std::vector<model::ModelProfile> profiles(1);  // zero-latency
  profiles[0].top1_accuracy = 0.9;
  ServingObs obs;
  obs.now = 1.0;
  obs.tau = 10.0;
  obs.batch_sizes = &kBatches;
  obs.models = &profiles;
  obs.queue_waits.assign(8, 0.001);
  obs.queue_len = 8;
  obs.busy_remaining.assign(1, 0.0);
  ServingAction action = shared->Decide(obs);
  ASSERT_TRUE(action.process);
  EXPECT_EQ(action.model_mask, 1u);
  EXPECT_EQ(action.batch_size, 8)
      << "did not converge to the Eq. 7 optimum batch";
}

TEST(InferenceRuntimeTest, RlPolicyHonorsModelSubsetSelection) {
  // A policy that selects a strict subset must only have those models run
  // (and vote): with model 0 an identity net and model 1 a negated one,
  // mask = 0b01 must answer argmax even though the negated model would
  // win an all-models accuracy tie-break.
  class FixedMaskPolicy : public SchedulerPolicy {
   public:
    ServingAction Decide(const ServingObs& obs) override {
      if (obs.queue_len == 0) return ServingAction{};
      return ServingAction{true, /*model_mask=*/1u, /*batch_size=*/1};
    }
    std::string name() const override { return "fixed_mask"; }
  };
  InferenceRuntime runtime;
  std::vector<ServableModel> models;
  models.push_back(MakeIdentityModel(4, 0.6, "id"));
  models.push_back(MakeIdentityModel(4, 0.99, "neg", /*negate=*/true));
  RuntimeOptions options;
  options.tau = 30.0;
  options.calibrate = false;
  options.policy_factory = [](const PolicyInit&) {
    return std::make_unique<FixedMaskPolicy>();
  };
  ASSERT_TRUE(runtime.Deploy("j", std::move(models), options).ok());
  auto submitted = runtime.Submit("j", OneHot(4, 2));
  ASSERT_TRUE(submitted.ok());
  Result<EnsemblePrediction> answer = submitted->get();
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->label, 2);  // the negated model never voted
  ASSERT_EQ(answer->votes.size(), 1u);
  auto metrics = runtime.Metrics("j");
  ASSERT_TRUE(metrics.ok());
  // Reward uses the accuracy of the SELECTED subset (0.6), not the best
  // deployed model's.
  EXPECT_NEAR(metrics->accuracy_sum, 0.6, 1e-9);
  ASSERT_TRUE(runtime.Undeploy("j").ok());
}

}  // namespace
}  // namespace rafiki::serving
