// Proves the tentpole zero-allocation property of the training hot path:
// once a Net's workspace and layer caches are reserved (or warmed by one
// step), a steady-state ZeroGrad -> Forward -> loss -> Backward -> Sgd::Step
// cycle performs no heap allocations at all.
//
// The proof is a global operator new/delete hook that counts allocations
// while a flag is armed. The workload is deliberately sized below the GEMM
// and SGD parallel thresholds (kGemmParallelMinFlops / kParallelMinElems):
// the thread-pool path allocates task closures by design, so the
// zero-allocation contract is about the serial per-step fast path every
// shard and replica runs on.

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "gtest/gtest.h"
#include "nn/loss.h"
#include "nn/net.h"
#include "nn/sgd.h"
#include "tensor/kernels.h"

namespace {

std::atomic<long> g_allocs{0};
std::atomic<bool> g_armed{false};

void CountAlloc() {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void* operator new(std::size_t size) {
  CountAlloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  CountAlloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rafiki::nn {
namespace {

TEST(TrainStepAllocTest, SteadyStateStepIsAllocationFree) {
  const int64_t kBatch = 32, kIn = 32, kHidden = 64, kClasses = 10;
  // Stay below the parallel cutoffs so every kernel takes its serial path.
  ASSERT_LT(2 * kBatch * kIn * kHidden, kernels::kGemmParallelMinFlops);
  ASSERT_LT(kIn * kHidden, Sgd::kParallelMinElems);

  Rng rng(17);
  Net net = MakeMlp({kIn, kHidden, kClasses}, 0.05f, /*dropout=*/0.0f, rng);
  Workspace ws;
  net.Reserve({kBatch, kIn}, &ws);

  Tensor x({kBatch, kIn});
  std::vector<int64_t> labels(kBatch);
  for (int64_t i = 0; i < kBatch; ++i) {
    x.data()[i * kIn + i % kIn] = 1.0f;
    labels[static_cast<size_t>(i)] = i % kClasses;
  }

  Sgd sgd(SgdOptions{});
  LossResult loss;
  auto step = [&] {
    net.ZeroGrad();
    const Tensor& logits = net.Forward(x, /*train=*/true, &ws);
    SoftmaxCrossEntropyInto(logits, labels, &loss);
    net.Backward(loss.grad, &ws);
    sgd.Step(net.ParamList());
  };

  // Warm up: sizes the loss buffer, SGD velocities, and the GEMM kernels'
  // thread-local pack buffers.
  for (int i = 0; i < 3; ++i) step();

  g_allocs.store(0);
  g_armed.store(true);
  for (int i = 0; i < 50; ++i) step();
  g_armed.store(false);

  EXPECT_EQ(g_allocs.load(), 0)
      << "steady-state Forward+Backward+Step must not touch the heap";
  EXPECT_GT(loss.loss, 0.0f);  // the steps really computed something
}

TEST(TrainStepAllocTest, ReserveMakesFirstStepAllocationFree) {
  // Reserve alone (no warm-up pass) must already cover the forward/backward
  // buffers; only optimizer state (first Step) is exempt, so warm it with
  // one Step on zero grads.
  const int64_t kBatch = 16, kIn = 8, kHidden = 12, kClasses = 4;
  Tensor x({kBatch, kIn});
  std::vector<int64_t> labels(kBatch, 1);
  LossResult loss;
  loss.grad.EnsureShape2(kBatch, kClasses);

  // Warm process-level caches (GEMM thread-local pack buffers) with a
  // sacrificial net of the same architecture; per-net buffers of the net
  // under test must be covered by Reserve alone.
  {
    Rng wrng(9);
    Net warm = MakeMlp({kIn, kHidden, kClasses}, 0.05f, 0.0f, wrng);
    Workspace wws;
    warm.Reserve({kBatch, kIn}, &wws);
    warm.ZeroGrad();
    warm.Backward(warm.Forward(x, true, &wws), &wws);
  }

  Rng rng(3);
  Net net = MakeMlp({kIn, kHidden, kClasses}, 0.05f, 0.0f, rng);
  Workspace ws;
  net.Reserve({kBatch, kIn}, &ws);
  net.ZeroGrad();
  Sgd sgd(SgdOptions{});
  sgd.Step(net.ParamList());

  g_allocs.store(0);
  g_armed.store(true);
  net.ZeroGrad();
  const Tensor& logits = net.Forward(x, /*train=*/true, &ws);
  SoftmaxCrossEntropyInto(logits, labels, &loss);
  net.Backward(loss.grad, &ws);
  sgd.Step(net.ParamList());
  g_armed.store(false);

  EXPECT_EQ(g_allocs.load(), 0)
      << "Reserve must pre-size every buffer the first step needs";
}

}  // namespace
}  // namespace rafiki::nn
