#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"
#include "gtest/gtest.h"

namespace rafiki {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::Cancelled("x"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::InvalidArgument("boom"); };
  auto wrapper = [&]() -> Status {
    RAFIKI_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto makes = []() -> Result<int> { return 5; };
  auto fails = []() -> Result<int> { return Status::Internal("x"); };
  auto user = [&](bool fail) -> Result<int> {
    RAFIKI_ASSIGN_OR_RETURN(int v, fail ? fails() : makes());
    return v + 1;
  };
  EXPECT_EQ(*user(false), 6);
  EXPECT_EQ(user(true).status().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    saw_lo |= v == 1;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, LogUniformStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.LogUniform(1e-4, 1.0);
    EXPECT_GE(v, 1e-4);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) stat.Add(rng.Gaussian(1.0, 2.0));
  EXPECT_NEAR(stat.mean(), 1.0, 0.08);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.08);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(42);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  // Different forks should produce different streams.
  EXPECT_NE(child1.Next64(), child2.Next64());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock(10.0);
  EXPECT_DOUBLE_EQ(clock.Now(), 10.0);
  clock.Advance(2.5);
  clock.Sleep(1.5);
  EXPECT_DOUBLE_EQ(clock.Now(), 14.0);
  clock.AdvanceTo(20.0);
  EXPECT_DOUBLE_EQ(clock.Now(), 20.0);
}

TEST(RealClockTest, MonotonicallyIncreases) {
  RealClock clock;
  double t0 = clock.Now();
  clock.Sleep(0.005);
  EXPECT_GT(clock.Now(), t0);
}

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BlockingQueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
  q.Push(9);  // push after close is dropped
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CrossThreadHandoff) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) q.Push(i);
    q.Close();
  });
  int count = 0;
  while (auto v = q.Pop()) ++count;
  producer.join();
  EXPECT_EQ(count, 100);
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_EQ(s.count(), 4u);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat a, b, all;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    double v = rng.Gaussian();
    (i % 2 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 1.0, 10);
  h.Add(0.05);
  h.Add(0.15);
  h.Add(0.15);
  h.Add(-5.0);  // clamps to first bucket
  h.Add(5.0);   // clamps to last
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(9), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.CountAtLeast(0.15), 3u);
}

TEST(HistogramTest, CountAtLeastQuantizesToBucketEdges) {
  Histogram h(0.0, 1.0, 10);
  h.Add(0.05);
  h.Add(0.15);
  h.Add(0.25);
  // Thresholds are floored to the containing bucket's lower edge, so any
  // threshold inside (0.1, 0.2] counts everything from bucket 1 on.
  EXPECT_EQ(h.CountAtLeast(0.19), 2u);
  EXPECT_EQ(h.CountAtLeast(0.11), 2u);
  // Below the range counts all; at/above the top counts none.
  EXPECT_EQ(h.CountAtLeast(-3.0), 3u);
  EXPECT_EQ(h.CountAtLeast(1.0), 0u);
  EXPECT_EQ(h.CountAtLeast(7.0), 0u);
}

TEST(LatencyHistogramTest, QuantilesWithinBucketError) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i) * 1e-3);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean(), 0.5005, 1e-9);
  // Log-bucketed with growth 1.1: values are exact to within 10%.
  EXPECT_NEAR(h.P50(), 0.5, 0.5 * 0.11);
  EXPECT_NEAR(h.P95(), 0.95, 0.95 * 0.11);
  EXPECT_NEAR(h.P99(), 0.99, 0.99 * 0.11);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  // Quantiles never leave the observed range.
  EXPECT_GE(h.Quantile(0.0), h.min());
  EXPECT_LE(h.Quantile(1.0), h.max());
}

TEST(LatencyHistogramTest, SingleSampleAndMerge) {
  LatencyHistogram a;
  a.Add(0.02);
  // One sample: every quantile is that sample (clamped to [min, max]).
  EXPECT_DOUBLE_EQ(a.P50(), 0.02);
  EXPECT_DOUBLE_EQ(a.P99(), 0.02);

  LatencyHistogram b;
  for (int i = 0; i < 99; ++i) b.Add(1.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_DOUBLE_EQ(a.min(), 0.02);
  EXPECT_DOUBLE_EQ(a.max(), 1.0);
  // 99 of 100 samples at 1.0: p99 lands in the 1.0 bucket.
  EXPECT_NEAR(a.P99(), 1.0, 1.0 * 0.11);

  LatencyHistogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.P50(), 0.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 100u);
}

TEST(EwmaTest, ConvergesTowardInput) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.Add(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

TEST(StringUtilTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(Join({}, "/"), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("study/x/master", "study/"));
  EXPECT_FALSE(StartsWith("stu", "study"));
}

}  // namespace
}  // namespace rafiki
