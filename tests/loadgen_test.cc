#include "net/loadgen.h"

#include <atomic>

#include "gtest/gtest.h"
#include "net/http_server.h"

namespace rafiki::net {
namespace {

TEST(LoadGenTest, OpenLoopConservesAndMeasures) {
  std::atomic<int> hits{0};
  HttpServer server([&](const HttpRequest&) {
    ++hits;
    HttpResponse resp;
    resp.body = "ok";
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions opts;
  opts.port = server.port();
  opts.duration_seconds = 1.0;
  opts.target_rate = 200.0;
  opts.sine_period = 0.0;  // constant rate: deterministic arrival count
  opts.connections = 2;
  opts.window_seconds = 0.25;
  LoadGenReport report = RunLoadGen(opts);
  server.Stop();

  // Constant 200 req/s over 1 s schedules ~200 arrivals (the final partial
  // tick may round one off).
  EXPECT_GE(report.arrived, 195);
  EXPECT_LE(report.arrived, 201);
  EXPECT_EQ(report.errors, 0) << report.ToString();
  // Conservation: every arrival was either answered, errored, or dropped.
  EXPECT_EQ(report.arrived,
            report.completed + report.errors + report.dropped);
  EXPECT_EQ(hits.load(), static_cast<int>(report.completed));
  // Window sums match the totals.
  int64_t win_arrived = 0, win_completed = 0;
  for (const LoadGenWindow& w : report.windows) {
    win_arrived += w.arrived;
    win_completed += w.completed;
  }
  EXPECT_EQ(win_arrived, report.arrived);
  EXPECT_EQ(win_completed, report.completed);
  // Latencies were recorded for every completion.
  EXPECT_EQ(report.latency.count(), static_cast<size_t>(report.completed));
  EXPECT_GT(report.latency.P50(), 0.0);
  EXPECT_GE(report.latency.P99(), report.latency.P50());
  EXPECT_GT(report.achieved_rps, 0.0);
}

TEST(LoadGenTest, SineArrivalsFollowThePaperProcess) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions opts;
  opts.port = server.port();
  opts.duration_seconds = 1.0;
  opts.target_rate = 150.0;
  opts.sine_period = 1.0;  // one full sine cycle within the run
  opts.noise_stddev = 0.0;
  opts.connections = 2;
  opts.window_seconds = 0.25;
  LoadGenReport report = RunLoadGen(opts);
  server.Stop();

  EXPECT_GT(report.arrived, 0);
  EXPECT_EQ(report.arrived,
            report.completed + report.errors + report.dropped);
  EXPECT_EQ(report.errors, 0) << report.ToString();
  // The sine modulates the rate across windows: not all equal.
  int64_t lo = report.windows[0].arrived, hi = report.windows[0].arrived;
  for (const LoadGenWindow& w : report.windows) {
    lo = std::min(lo, w.arrived);
    hi = std::max(hi, w.arrived);
  }
  EXPECT_GT(hi, lo);
}

TEST(LoadGenTest, ClosedLoopRunsBackToBack) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions opts;
  opts.port = server.port();
  opts.open_loop = false;
  opts.duration_seconds = 0.5;
  opts.connections = 2;
  opts.window_seconds = 0.25;
  LoadGenReport report = RunLoadGen(opts);
  server.Stop();

  EXPECT_GT(report.completed, 0);
  EXPECT_EQ(report.arrived,
            report.completed + report.errors + report.dropped);
  EXPECT_EQ(report.dropped, 0);  // closed loop never drops
  EXPECT_EQ(report.errors, 0) << report.ToString();
}

TEST(LoadGenTest, CountsRejectionsSeparatelyFromErrors) {
  // A server that always sheds: 503s count as completed+rejected, not
  // errors (the loadgen models overload as a valid server answer).
  HttpServer server([](const HttpRequest&) {
    HttpResponse resp;
    resp.status = 503;
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions opts;
  opts.port = server.port();
  opts.duration_seconds = 0.5;
  opts.target_rate = 100.0;
  opts.sine_period = 0.0;
  opts.connections = 1;
  LoadGenReport report = RunLoadGen(opts);
  server.Stop();

  EXPECT_EQ(report.errors, 0) << report.ToString();
  EXPECT_EQ(report.rejected, report.completed);
  EXPECT_GT(report.rejected, 0);
}

TEST(LoadGenTest, SpinPacerSustainsFiftyThousandPerSecond) {
  // The busy-spin pacer's contract: at spin-pacing rates the *schedule*
  // is emitted in full — arrived tracks rate * duration even when nothing
  // answers (the port is dead, every request errors instantly). Workers
  // contending for the CPU must not silently depress the arrival rate.
  LoadGenOptions opts;
  opts.port = 1;  // no listener: connect fails immediately
  opts.duration_seconds = 0.5;
  opts.target_rate = 80e3;  // >= the 50e3 spin-pacing threshold
  opts.sine_period = 0.0;
  opts.connections = 2;
  opts.max_backlog = 1u << 20;  // count the full schedule, don't drop it
  LoadGenReport report = RunLoadGen(opts);

  EXPECT_GE(report.arrived + report.dropped,
            static_cast<int64_t>(0.95 * 80e3 * opts.duration_seconds))
      << report.ToString();
  EXPECT_GE(report.arrived, static_cast<int64_t>(50e3 * opts.duration_seconds))
      << report.ToString();
}

}  // namespace
}  // namespace rafiki::net
