// The Section 8 case study: a database developer adds deep-learning
// analytics to an existing food-logging application without touching their
// SQL. A deep-learning expert trains a food classifier in Rafiki; the
// database user calls it through a UDF:
//
//   SELECT food_name(image_path) AS name, count(*)
//   FROM foodlog WHERE age > 52 GROUP BY name;
//
// The UDF runs ONLY on rows that survive the WHERE filter (the paper's
// efficiency argument), and re-training the model changes nothing on the
// SQL side.
//
// Run: ./build/examples/example_food_logging

#include <cstdio>
#include <string>

#include "data/dataset.h"
#include "rafiki/rafiki.h"
#include "sql/query.h"
#include "sql/table.h"

namespace {

const char* kFoodNames[] = {"laksa", "pizza", "chicken_rice", "salad",
                            "ramen"};

}  // namespace

int main() {
  rafiki::api::Rafiki rafiki;

  // --- Deep-learning expert's side -------------------------------------
  // Train a 5-class food classifier on (synthetic) food images' feature
  // vectors and deploy it as a service.
  rafiki::data::SyntheticTaskOptions task;
  task.num_classes = 5;
  task.samples_per_class = 80;
  task.input_dim = 32;
  task.separation = 5.0;
  rafiki::data::Dataset food_images = rafiki::data::MakeSyntheticTask(task);
  RAFIKI_CHECK_OK(rafiki.ImportDataset("food", food_images).status());

  rafiki::api::TrainConfig config;
  config.dataset = "food";
  config.input_shape = {32};
  config.output_shape = {5};
  config.hyper.max_trials = 8;
  config.hyper.max_epochs_per_trial = 10;
  config.num_workers = 2;
  auto job = rafiki.Train(config);
  RAFIKI_CHECK_OK(job.status());
  auto info = rafiki.WaitJob(*job);
  RAFIKI_CHECK_OK(info.status());
  auto models = rafiki.GetModels(*job);
  RAFIKI_CHECK_OK(models.status());
  auto service = rafiki.Deploy(*models);
  RAFIKI_CHECK_OK(service.status());
  std::printf("food classifier trained (val accuracy %.3f) and deployed "
              "as %s\n",
              info->best_performance, service->c_str());

  // --- Database user's side ---------------------------------------------
  // CREATE TABLE foodlog (user_id, age, location, time, image_path) —
  // image_path references a stored image (here: a dataset row index).
  rafiki::sql::Table foodlog(
      "foodlog", {{"user_id", rafiki::sql::ColumnType::kInteger, false},
                  {"age", rafiki::sql::ColumnType::kInteger, true},
                  {"location", rafiki::sql::ColumnType::kText, true},
                  {"time", rafiki::sql::ColumnType::kText, true},
                  {"image_path", rafiki::sql::ColumnType::kInteger, true}});
  rafiki::Rng rng(42);
  const int kMeals = 300;
  for (int i = 0; i < kMeals; ++i) {
    RAFIKI_CHECK_OK(foodlog.Insert(rafiki::sql::Row{
        rafiki::sql::Value{static_cast<int64_t>(i % 40)},
        rafiki::sql::Value{rng.UniformInt(18, 80)},
        rafiki::sql::Value{std::string(i % 2 ? "sg" : "kl")},
        rafiki::sql::Value{std::string("2018-04-") +
                           std::to_string(1 + i % 28)},
        rafiki::sql::Value{rng.UniformInt(0, food_images.size() - 1)}}));
  }

  // The food_name() UDF: fetch the image features, call the deployed
  // Rafiki service (the paper's Web API), map the label to a name.
  size_t udf_calls = 0;
  rafiki::sql::ScalarUdf food_name =
      [&](const rafiki::sql::Value& image_path) -> rafiki::sql::Value {
    ++udf_calls;
    int64_t row = std::get<int64_t>(image_path);
    rafiki::Tensor features({1, 32});
    std::copy(food_images.x.data() + row * 32,
              food_images.x.data() + (row + 1) * 32, features.data());
    auto prediction = rafiki.Query(*service, features);
    if (!prediction.ok()) return rafiki::sql::Value{};
    return rafiki::sql::Value{
        std::string(kFoodNames[prediction->label % 5])};
  };

  // SELECT food_name(image_path) AS name, count(*) FROM foodlog
  // WHERE age > 52 GROUP BY name;
  rafiki::sql::Query query(&foodlog);
  query
      .Select({.column = "image_path", .udf = food_name, .alias = "name"})
      .Where(rafiki::sql::ColumnCompare(foodlog, "age", ">",
                                        rafiki::sql::Value{int64_t{52}}))
      .GroupByCount(0);
  auto result = query.Execute();
  RAFIKI_CHECK_OK(result.status());

  std::printf("\nSELECT food_name(image_path) AS name, count(*) "
              "FROM foodlog WHERE age > 52 GROUP BY name;\n\n%s\n",
              result->ToString().c_str());
  std::printf("table rows: %zu; UDF (inference) calls: %zu — the model ran "
              "only on filtered rows\n",
              foodlog.size(), udf_calls);
  return 0;
}
