// rafiki_tune_worker: one tuning worker as a real OS process. Dials the
// master's TCP bus (rafiki_tune_master spawns these), shares the master's
// parameter server through kPsPut/kPsGet over the wire, and runs the
// standard StudyWorker protocol: request trial, train epoch by epoch,
// report, finish, repeat until kNoMoreTrials.
//
//   ./build/examples/rafiki_tune_worker --study=demo --worker=w0
//       --port=7070 --seed=42
//
// Workers are stateless (§6.3): the master's supervisor can kill -9 this
// process at any point and respawn it with the same flags; the restarted
// worker simply re-requests work.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/ps_service.h"
#include "cluster/rpc_bus.h"
#include "common/string_util.h"
#include "trainer/surrogate.h"
#include "tuning/study.h"

namespace {

int64_t FlagInt(int argc, char** argv, const char* name, int64_t fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (rafiki::StartsWith(argv[i], prefix)) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::string FlagString(int argc, char** argv, const char* name,
                       const char* fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (rafiki::StartsWith(argv[i], prefix)) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  std::string study = FlagString(argc, argv, "study", "demo");
  std::string worker = FlagString(argc, argv, "worker", "w0");
  std::string host = FlagString(argc, argv, "host", "127.0.0.1");
  auto port = static_cast<uint16_t>(FlagInt(argc, argv, "port", 0));
  auto seed = static_cast<uint64_t>(FlagInt(argc, argv, "seed", 1));
  auto surrogate_seed =
      static_cast<uint64_t>(FlagInt(argc, argv, "surrogate-seed", 99));
  if (port == 0) {
    std::fprintf(stderr, "--port of the master bus is required\n");
    return 2;
  }

  rafiki::tuning::StudyConfig config;
  config.collaborative = FlagInt(argc, argv, "collaborative", 0) != 0;
  config.max_epochs_per_trial =
      static_cast<int>(FlagInt(argc, argv, "max-epochs", 40));

  rafiki::cluster::RpcBusOptions options;
  options.port = port;
  options.connect_host = host;
  auto bus = rafiki::cluster::RpcBus::Connect(options);
  if (!bus.ok()) {
    std::fprintf(stderr, "cannot start bus: %s\n",
                 bus.status().ToString().c_str());
    return 1;
  }

  rafiki::cluster::RemoteParameterStore store(bus.value().get(), worker);
  rafiki::trainer::SurrogateOptions surrogate;
  surrogate.seed = surrogate_seed;
  rafiki::trainer::SurrogateFactory factory(surrogate);

  std::printf("worker=%s study=%s port=%u\n", worker.c_str(), study.c_str(),
              port);
  std::fflush(stdout);

  rafiki::cluster::CancelToken token;
  rafiki::tuning::StudyWorker body(study, worker, config, &factory,
                                   bus.value().get(), &store, seed);
  body.Run(token);
  return 0;
}
