// Domain example 2: sentiment analysis with the full tuning toolkit used
// directly (below the Rafiki facade). Demonstrates:
//  * a Table-1-style hyper-parameter space with all three knob groups,
//    including a `depends` edge + post hook (Figure 4's API);
//  * Bayesian optimization vs random search on a real MLP trainer
//    (bag-of-words-like synthetic sentiment features);
//  * CoStudy checkpoint sharing through the parameter server.
//
// Run: ./build/examples/example_sentiment_tuning

#include <cstdio>

#include "cluster/message_bus.h"
#include "data/dataset.h"
#include "ps/parameter_server.h"
#include "trainer/real_trainer.h"
#include "tuning/bayes_opt.h"
#include "tuning/study.h"

int main() {
  using namespace rafiki;  // NOLINT

  // Synthetic "review embedding" sentiment task: 2 classes, 48-d features.
  data::SyntheticTaskOptions task;
  task.num_classes = 2;
  task.samples_per_class = 250;
  task.input_dim = 48;
  task.separation = 2.2;  // hard enough that tuning matters
  task.spread = 1.2;
  data::Dataset reviews = data::MakeSyntheticTask(task);
  Rng rng(7);
  data::DataSplits splits = data::SplitDataset(reviews, 0.7, 0.3, rng);
  std::printf("sentiment dataset: %lld train / %lld validation reviews\n",
              static_cast<long long>(splits.train.size()),
              static_cast<long long>(splits.validation.size()));

  // Hyper-parameter space (Table 1): group 3 optimization knobs, a group 2
  // architecture knob, and a dependent decay knob adjusted by a post hook
  // exactly as §4.2.1 describes (large learning rates get faster decay).
  tuning::HyperSpace space;
  RAFIKI_CHECK_OK(space.AddRangeKnob("learning_rate",
                                     tuning::KnobDtype::kFloat, 1e-3, 0.5,
                                     /*log_scale=*/true));
  RAFIKI_CHECK_OK(space.AddRangeKnob(
      "lr_decay", tuning::KnobDtype::kFloat, 0.5, 1.0, false,
      /*depends=*/{"learning_rate"}, nullptr, [](tuning::Trial* t) {
        if (t->GetDouble("learning_rate") > 0.2) {
          t->Set("lr_decay", tuning::KnobValue(0.6));  // decay fast
        }
      }));
  RAFIKI_CHECK_OK(
      space.AddRangeKnob("momentum", tuning::KnobDtype::kFloat, 0.0, 0.99));
  RAFIKI_CHECK_OK(space.AddRangeKnob("weight_decay",
                                     tuning::KnobDtype::kFloat, 1e-6, 1e-2,
                                     /*log_scale=*/true));
  RAFIKI_CHECK_OK(
      space.AddRangeKnob("dropout", tuning::KnobDtype::kFloat, 0.0, 0.5));
  RAFIKI_CHECK_OK(space.AddRangeKnob("init_std", tuning::KnobDtype::kFloat,
                                     1e-2, 0.5, /*log_scale=*/true));
  RAFIKI_CHECK_OK(
      space.AddNumericCategoricalKnob("hidden_units", {16, 32, 64}));

  auto run = [&](const char* name, bool bayes, bool collaborative) {
    std::unique_ptr<tuning::TrialAdvisor> advisor;
    if (bayes) {
      tuning::BayesOptOptions options;
      options.max_trials = 16;
      options.num_init_random = 6;
      options.seed = 3;
      advisor = std::make_unique<tuning::BayesOptAdvisor>(&space, options);
    } else {
      advisor =
          std::make_unique<tuning::RandomSearchAdvisor>(&space, 16, 3);
    }
    trainer::RealTrainerOptions trainer_options;
    trainer::RealTrainerFactory factory(&splits.train, &splits.validation,
                                        trainer_options);
    cluster::MessageBus bus;
    ps::ParameterServer ps;
    tuning::StudyConfig config;
    config.max_trials = 16;
    config.max_epochs_per_trial = 8;
    config.collaborative = collaborative;
    config.early_stop_patience = 4;
    tuning::StudyStats stats =
        tuning::RunStudy(name, config, advisor.get(), &factory, &bus, &ps,
                         nullptr, /*num_workers=*/2, /*seed=*/5);
    std::printf("%-28s best=%.3f (trial %s)\n", name,
                stats.best_performance,
                stats.best_trial.DebugString().c_str());
    return stats.best_performance;
  };

  std::printf("\n16-trial studies on the sentiment task:\n");
  run("random_search", false, false);
  run("random_search_costudy", false, true);
  run("bayes_opt", true, false);
  run("bayes_opt_costudy", true, true);
  return 0;
}
