// Quickstart: the Figure 2 user flow, end to end, in ~40 lines of user
// code. Mirrors the paper's train.py / infer.py / query.py snippets:
//
//   data = rafiki.import_images('food/')          -> ImportDataset
//   job = rafiki.Train(...); job_id = job.run()   -> Train (async)
//   models = rafiki.get_models(job_id)            -> GetModels
//   job = rafiki.Inference(models); job.run()     -> Deploy
//   ret = rafiki.query(job=job_id, data={...})    -> Query
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/example_quickstart

#include <cstdio>

#include "data/dataset.h"
#include "rafiki/rafiki.h"

int main() {
  rafiki::api::Rafiki rafiki;

  // 1. Upload a dataset into Rafiki's distributed storage. We use the
  // built-in synthetic classification task (10 classes, 64-d features) in
  // place of a folder of images.
  rafiki::data::SyntheticTaskOptions task;
  task.num_classes = 10;
  task.samples_per_class = 80;
  task.input_dim = 64;
  task.separation = 4.0;
  rafiki::data::Dataset dataset = rafiki::data::MakeSyntheticTask(task);
  auto data_handle = rafiki.ImportDataset("food", dataset);
  RAFIKI_CHECK_OK(data_handle.status());
  std::printf("imported dataset -> %s (%lld rows, %lld classes)\n",
              data_handle->c_str(), static_cast<long long>(dataset.size()),
              static_cast<long long>(dataset.num_classes));

  // 2. Configure and submit the training job (the paper's HyperConf).
  rafiki::api::TrainConfig config;
  config.task = "ImageClassification";
  config.dataset = *data_handle;
  config.input_shape = {64};
  config.output_shape = {10};
  config.hyper.max_trials = 12;
  config.hyper.max_epochs_per_trial = 10;
  config.hyper.collaborative = true;  // CoStudy on
  config.advisor = rafiki::api::AdvisorKind::kRandomSearch;
  config.num_workers = 2;
  auto job_id = rafiki.Train(config);
  RAFIKI_CHECK_OK(job_id.status());
  std::printf("training job submitted: %s (12 trials, 2 workers, "
              "collaborative tuning)\n",
              job_id->c_str());

  // 3. Wait for the distributed hyper-parameter study to finish.
  auto info = rafiki.WaitJob(*job_id);
  RAFIKI_CHECK_OK(info.status());
  std::printf("job done: best validation accuracy %.3f over %lld trials\n"
              "best trial: %s\n",
              info->best_performance,
              static_cast<long long>(info->trials_finished),
              info->best_trial.DebugString().c_str());

  // 4. Instant deployment: the best parameters are already in the
  // parameter server.
  auto models = rafiki.GetModels(*job_id);
  RAFIKI_CHECK_OK(models.status());
  auto inference_id = rafiki.Deploy(*models);
  RAFIKI_CHECK_OK(inference_id.status());
  std::printf("deployed inference job %s (model accuracy %.3f)\n",
              inference_id->c_str(), (*models)[0].accuracy);

  // 5. Query it like an application would.
  int correct = 0;
  const int kQueries = 200;
  for (int i = 0; i < kQueries; ++i) {
    rafiki::Tensor row({1, 64});
    std::copy(dataset.x.data() + i * 64, dataset.x.data() + (i + 1) * 64,
              row.data());
    auto prediction = rafiki.Query(*inference_id, row);
    RAFIKI_CHECK_OK(prediction.status());
    if (prediction->label == dataset.labels[static_cast<size_t>(i)]) {
      ++correct;
    }
  }
  std::printf("served %d queries; accuracy on queried rows: %.1f%%\n",
              kQueries, 100.0 * correct / kQueries);
  return 0;
}
