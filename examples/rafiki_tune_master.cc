// rafiki_tune_master: the distributed tuning plane's master process.
// Listens on a TCP message bus, serves the shared parameter server over
// the wire, runs the Algorithm 1/2 study master, and spawns + supervises
// rafiki_tune_worker processes — restarting any worker the environment
// (or a failure-injection script) kills mid-trial.
//
//   ./build/examples/rafiki_tune_master --study=demo --workers=2
//       --trials=12 --checkpoint-dir=/tmp/rafiki_ckpt
//
// With --bus=local everything runs in-process on the loopback MessageBus
// instead (same study code path), which the parity test uses to check the
// TCP plane reproduces the in-process best trial bit for bit.
//
// Output is machine-parseable (smoke_tune.sh greps it):
//   port=7070
//   spawned worker=w0 pid=1234
//   restarted worker=w0 pid=1301 restarts=1
//   worker=w0 restarts=1
//   ledger proposed=12 completed=11 lost=1 active=0 balanced=1
//   trials=11 best=0.91324 best_trial=lr:...
// Exit status is nonzero if the ledger does not balance.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cluster/message_bus.h"
#include "cluster/node_manager.h"
#include "cluster/process_runner.h"
#include "cluster/ps_service.h"
#include "cluster/rpc_bus.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "ps/parameter_server.h"
#include "storage/blob_store.h"
#include "trainer/surrogate.h"
#include "tuning/hyperspace.h"
#include "tuning/study.h"
#include "tuning/trial_advisor.h"

namespace {

using rafiki::StrFormat;

int64_t FlagInt(int argc, char** argv, const char* name, int64_t fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (rafiki::StartsWith(argv[i], prefix)) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::string FlagString(int argc, char** argv, const char* name,
                       const char* fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (rafiki::StartsWith(argv[i], prefix)) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

rafiki::tuning::HyperSpace MakeOptimizerSpace() {
  // The SGD-hyperparameter space the surrogate trainer models (§7.1).
  rafiki::tuning::HyperSpace space;
  using rafiki::tuning::KnobDtype;
  RAFIKI_CHECK_OK(space.AddRangeKnob("learning_rate", KnobDtype::kFloat, 1e-4,
                                     1.0, /*log_scale=*/true));
  RAFIKI_CHECK_OK(
      space.AddRangeKnob("momentum", KnobDtype::kFloat, 0.0, 0.999));
  RAFIKI_CHECK_OK(space.AddRangeKnob("weight_decay", KnobDtype::kFloat, 1e-6,
                                     1e-1, /*log_scale=*/true));
  RAFIKI_CHECK_OK(space.AddRangeKnob("dropout", KnobDtype::kFloat, 0.0, 0.7));
  RAFIKI_CHECK_OK(space.AddRangeKnob("init_std", KnobDtype::kFloat, 1e-3, 1.0,
                                     /*log_scale=*/true));
  return space;
}

std::string DefaultWorkerBinary(const char* argv0) {
  std::string self = argv0;
  size_t slash = self.rfind('/');
  std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/rafiki_tune_worker";
}

// Prints the study outcome and returns the process exit status.
int Report(const rafiki::tuning::StudyMaster& master,
           const rafiki::tuning::StudyStats& stats) {
  rafiki::tuning::TrialLedger ledger = master.ledger();
  bool balanced = ledger.active == 0 &&
                  ledger.proposed == ledger.completed + ledger.lost;
  std::printf("ledger proposed=%lld completed=%lld lost=%lld active=%lld "
              "balanced=%d\n",
              static_cast<long long>(ledger.proposed),
              static_cast<long long>(ledger.completed),
              static_cast<long long>(ledger.lost),
              static_cast<long long>(ledger.active), balanced ? 1 : 0);
  std::printf("trials=%zu best=%.17g best_trial=%s\n", stats.trials.size(),
              stats.best_performance, stats.best_trial.Encode().c_str());
  std::fflush(stdout);
  return balanced ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string study = FlagString(argc, argv, "study", "demo");
  std::string bus_kind = FlagString(argc, argv, "bus", "tcp");
  std::string checkpoint_dir = FlagString(argc, argv, "checkpoint-dir", "");
  std::string worker_bin = FlagString(argc, argv, "worker-bin",
                                      DefaultWorkerBinary(argv[0]).c_str());
  auto port = static_cast<uint16_t>(FlagInt(argc, argv, "port", 0));
  int workers = static_cast<int>(FlagInt(argc, argv, "workers", 2));
  bool resume = FlagInt(argc, argv, "resume", 0) != 0;
  auto seed = static_cast<uint64_t>(FlagInt(argc, argv, "seed", 7));
  auto surrogate_seed =
      static_cast<uint64_t>(FlagInt(argc, argv, "surrogate-seed", 99));

  rafiki::tuning::StudyConfig config;
  config.max_trials = FlagInt(argc, argv, "trials", 12);
  config.max_epochs_per_trial =
      static_cast<int>(FlagInt(argc, argv, "max-epochs", 40));
  config.collaborative = FlagInt(argc, argv, "collaborative", 0) != 0;
  config.early_stop_patience =
      static_cast<int>(FlagInt(argc, argv, "patience", 5));
  config.checkpoint_every_events =
      static_cast<int>(FlagInt(argc, argv, "checkpoint-every", 32));
  config.num_workers = workers;

  rafiki::tuning::HyperSpace space = MakeOptimizerSpace();
  rafiki::tuning::RandomSearchAdvisor advisor(&space, config.max_trials,
                                              seed);
  rafiki::storage::BlobStore checkpoints(0, checkpoint_dir);
  rafiki::storage::BlobStore* ckpt_store =
      checkpoint_dir.empty() ? nullptr : &checkpoints;
  rafiki::ps::ParameterServer ps;

  if (bus_kind == "local") {
    // In-process parity path: same study code over the loopback bus.
    rafiki::cluster::MessageBus bus;
    rafiki::trainer::SurrogateOptions surrogate;
    surrogate.seed = surrogate_seed;
    rafiki::trainer::SurrogateFactory factory(surrogate);
    rafiki::tuning::StudyMaster master(study, config, &advisor, &bus,
                                       ckpt_store);
    if (resume) {
      rafiki::Status s = master.RestoreFromCheckpoint();
      if (!s.ok()) {
        std::fprintf(stderr, "resume: %s\n", s.ToString().c_str());
      }
    }
    rafiki::cluster::NodeManager manager;
    RAFIKI_CHECK_OK(manager.StartContainer(
        "master", [&master](rafiki::cluster::CancelToken& token) {
          master.Run(token);
        }));
    rafiki::Rng seeds(seed);
    std::vector<std::unique_ptr<rafiki::tuning::StudyWorker>> bodies;
    for (int i = 0; i < workers; ++i) {
      bodies.push_back(std::make_unique<rafiki::tuning::StudyWorker>(
          study, StrFormat("w%d", i), config, &factory, &bus, &ps,
          seeds.Fork().Next64()));
      rafiki::tuning::StudyWorker* w = bodies.back().get();
      RAFIKI_CHECK_OK(manager.StartContainer(
          StrFormat("worker/%d", i),
          [w](rafiki::cluster::CancelToken& token) { w->Run(token); }));
    }
    for (int i = 0; i < workers; ++i) {
      manager.WaitContainer(StrFormat("worker/%d", i));
    }
    manager.WaitContainer("master");
    return Report(master, master.stats());
  }

  if (bus_kind != "tcp") {
    std::fprintf(stderr, "unknown --bus=%s (want tcp or local)\n",
                 bus_kind.c_str());
    return 2;
  }

  rafiki::cluster::RpcBusOptions options;
  options.port = port;
  auto bus = rafiki::cluster::RpcBus::Listen(options);
  if (!bus.ok()) {
    std::fprintf(stderr, "cannot start bus: %s\n",
                 bus.status().ToString().c_str());
    return 1;
  }
  std::printf("port=%u\n", bus.value()->port());
  std::fflush(stdout);

  rafiki::cluster::PsService ps_service(bus.value().get(), &ps);
  RAFIKI_CHECK_OK(ps_service.Start());

  rafiki::tuning::StudyMaster master(study, config, &advisor,
                                     bus.value().get(), ckpt_store);
  if (resume) {
    rafiki::Status s = master.RestoreFromCheckpoint();
    if (!s.ok()) {
      std::fprintf(stderr, "resume: %s\n", s.ToString().c_str());
    }
  }

  rafiki::cluster::CancelToken token;
  std::atomic<bool> master_done{false};
  std::thread master_thread([&] {
    master.Run(token);
    master_done.store(true, std::memory_order_release);
  });

  // Spawn the worker fleet as real processes, each dialing our bus port.
  rafiki::cluster::ProcessRunner runner;
  rafiki::Rng seeds(seed);
  std::vector<std::string> names;
  for (int i = 0; i < workers; ++i) {
    std::string name = StrFormat("w%d", i);
    rafiki::cluster::ProcessSpec spec;
    spec.binary = worker_bin;
    spec.args = {
        "--study=" + study,
        "--worker=" + name,
        StrFormat("--port=%u", bus.value()->port()),
        StrFormat("--seed=%llu",
                  static_cast<unsigned long long>(seeds.Fork().Next64())),
        StrFormat("--collaborative=%d", config.collaborative ? 1 : 0),
        StrFormat("--max-epochs=%d", config.max_epochs_per_trial),
        StrFormat("--surrogate-seed=%llu",
                  static_cast<unsigned long long>(surrogate_seed)),
    };
    rafiki::Status spawned = runner.Spawn(name, spec);
    if (!spawned.ok()) {
      std::fprintf(stderr, "cannot spawn %s: %s\n", name.c_str(),
                   spawned.ToString().c_str());
      token.Cancel();
      master_thread.join();
      runner.Shutdown();
      return 1;
    }
    auto pid = runner.Pid(name);
    std::printf("spawned worker=%s pid=%d\n", name.c_str(),
                pid.ok() ? static_cast<int>(pid.value()) : -1);
    std::fflush(stdout);
    names.push_back(name);
  }

  // Supervisor loop (§6.3): while the study runs, reap worker exits and
  // restart any that died by signal — clean exits mean the worker was
  // retired by the master and is done for good.
  while (!master_done.load(std::memory_order_acquire)) {
    for (const auto& exit : runner.Poll()) {
      if (!exit.signaled) continue;
      rafiki::Status restarted = runner.Restart(exit.name);
      if (restarted.ok()) {
        auto pid = runner.Pid(exit.name);
        std::printf("restarted worker=%s pid=%d restarts=%d\n",
                    exit.name.c_str(),
                    pid.ok() ? static_cast<int>(pid.value()) : -1,
                    runner.RestartCount(exit.name));
        std::fflush(stdout);
      } else {
        std::fprintf(stderr, "cannot restart %s: %s\n", exit.name.c_str(),
                     restarted.ToString().c_str());
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  master_thread.join();

  // The master retired every worker before finishing, so the remaining
  // processes are draining their kNoMoreTrials and will exit cleanly.
  for (const auto& name : names) {
    if (runner.IsRunning(name)) {
      auto exit = runner.Wait(name);
      if (exit.ok() && exit.value().signaled) {
        std::fprintf(stderr, "worker %s died at shutdown (signal %d)\n",
                     name.c_str(), exit.value().signal);
      }
    }
    std::printf("worker=%s restarts=%d\n", name.c_str(),
                runner.RestartCount(name));
  }
  std::fflush(stdout);

  ps_service.Stop();
  int status = Report(master, master.stats());
  bus.value()->Shutdown();
  return status;
}
