// Domain example 4: the service surface of Figure 18 — applications talk
// to Rafiki through requests, not through the C++ API. A mobile app or a
// SQL UDF would send exactly these strings over HTTP
// (`curl -F image.jpg http://<rafiki>/api`); the gateway implements the
// routing/validation layer a socket server would wrap.
//
// Run: ./build/examples/example_web_api

#include <cstdio>
#include <thread>

#include "common/string_util.h"
#include "data/dataset.h"
#include "rafiki/gateway.h"

namespace {

std::string Field(const std::string& body, const std::string& key) {
  for (const std::string& pair : rafiki::Split(body, '&')) {
    if (rafiki::StartsWith(pair, key + "=")) {
      return pair.substr(key.size() + 1);
    }
  }
  return "";
}

}  // namespace

int main() {
  rafiki::api::Rafiki service;
  rafiki::api::Gateway gateway(&service);

  // Upload a dataset server-side (data upload itself goes through the bulk
  // storage path, not the request gateway — as with the paper's HDFS).
  rafiki::data::SyntheticTaskOptions task;
  task.num_classes = 4;
  task.samples_per_class = 60;
  task.input_dim = 16;
  task.separation = 4.5;
  rafiki::data::Dataset dataset = rafiki::data::MakeSyntheticTask(task);
  RAFIKI_CHECK_OK(service.ImportDataset("food", dataset).status());

  auto roundtrip = [&](const std::string& request) {
    rafiki::api::GatewayResponse response = gateway.Handle(request);
    std::printf(">> %s\n<< %s\n\n",
                rafiki::Split(request, '\n')[0].c_str(),
                response.ToString().c_str());
    return response;
  };

  // Train.
  auto train = roundtrip(
      "POST /train dataset=food&trials=6&epochs=8&workers=2&"
      "collaborative=1&advisor=bayes");
  std::string job = Field(train.body, "job_id");

  // Poll until done (a client would back off; we spin briefly).
  std::string info_body;
  while (true) {
    auto info = gateway.Handle("GET /jobs/" + job);
    info_body = info.body;
    if (Field(info_body, "done") == "1") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::printf(">> GET /jobs/%s (final)\n<< 200 %s\n\n", job.c_str(),
              info_body.c_str());

  // Deploy and query.
  auto deploy = roundtrip("POST /deploy job=" + job);
  std::string infer = Field(deploy.body, "job_id");

  std::vector<std::string> fields;
  for (int64_t i = 0; i < dataset.x.dim(1); ++i) {
    fields.push_back(rafiki::StrFormat("%.5f", dataset.x.at(i)));
  }
  roundtrip("POST /query job=" + infer + "\n" + rafiki::Join(fields, ","));

  // Error surface: applications get proper status codes.
  roundtrip("POST /query job=" + infer + "\nnot,numbers");
  roundtrip("GET /jobs/ghost");
  roundtrip("POST /undeploy job=" + infer);
  return 0;
}
