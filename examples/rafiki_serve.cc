// rafiki_serve: the real service front door. Wires the Rafiki facade +
// request gateway onto the epoll HTTP server and serves the Figure 18
// surface over actual TCP:
//
//   ./build/examples/rafiki_serve --port=8080
//   curl 'http://127.0.0.1:8080/jobs/<infer>/metrics'
//   curl -d '0,1,0,0' 'http://127.0.0.1:8080/query?job=<infer>'
//
// On startup it imports a synthetic dataset (name "demo", for /train) and
// auto-deploys a small hand-built MLP so /query and /jobs/<id>/metrics work
// immediately; the startup lines
//   dataset=demo
//   infer_job=<id> input_dim=<d> policy=<greedy|rl>
//   listening port=<p> workers=<n>
// are machine-parseable (scripts/smoke_serve.sh relies on them), as are the
// drain-time "job metrics ..." and "conservation ... ok=1" lines. SIGINT or
// SIGTERM triggers a graceful drain-then-stop.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "common/string_util.h"
#include "data/dataset.h"
#include "rafiki/http_gateway.h"
#include "serving/rl_scheduler.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop = true; }

int64_t FlagInt(int argc, char** argv, const char* name, int64_t fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (rafiki::StartsWith(argv[i], prefix)) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::string FlagString(int argc, char** argv, const char* name,
                       const char* fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (rafiki::StartsWith(argv[i], prefix)) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  auto port = static_cast<uint16_t>(FlagInt(argc, argv, "port", 0));
  auto workers = static_cast<int>(FlagInt(argc, argv, "workers", 2));
  auto handlers = static_cast<int>(FlagInt(argc, argv, "handlers", 4));
  auto max_inflight =
      static_cast<size_t>(FlagInt(argc, argv, "max-inflight", 256));
  // --sync=1 restores the blocking handler path (each in-flight query pins
  // a handler thread); default is the continuation-based async path.
  bool sync_mode = FlagInt(argc, argv, "sync", 0) != 0;
  // Serving SLO tau in milliseconds; queries queued longer than this are
  // answered 504 instead of occupying batch capacity. --tau-ms=0 disables
  // the queue deadline (soft SLO at the default tau) instead of tripping
  // the runtime's tau > 0 validation.
  int64_t tau_ms = FlagInt(argc, argv, "tau-ms", 50);
  // --policy=greedy|rl selects the dispatch policy of the auto-deployed
  // job: the paper's greedy Algorithm 3 or the §5.2 actor-critic scheduler
  // learning online from realized Equation 7 rewards.
  std::string policy = FlagString(argc, argv, "policy", "greedy");
  if (policy != "greedy" && policy != "rl") {
    std::fprintf(stderr, "--policy must be greedy|rl, got '%s'\n",
                 policy.c_str());
    return 2;
  }
  // --replicas=N caps the job at N dispatcher replicas; static by default
  // (all N start immediately). --autoscale=1 instead starts at one replica
  // and lets the ReplicaController grow/shrink within [1, N] from queue
  // pressure (its dwell is shortened so short smoke storms can trip it).
  int64_t replicas = FlagInt(argc, argv, "replicas", 1);
  bool autoscale = FlagInt(argc, argv, "autoscale", 0) != 0;
  if (replicas < 1 || replicas > 64) {
    std::fprintf(stderr, "--replicas must be in [1, 64]\n");
    return 2;
  }
  constexpr int64_t kInputDim = 4;
  constexpr int64_t kClasses = 3;

  rafiki::api::Rafiki service;

  // Dataset for /train over the wire.
  rafiki::data::SyntheticTaskOptions task;
  task.num_classes = 3;
  task.samples_per_class = 50;
  task.input_dim = 8;
  task.separation = 5.0;
  RAFIKI_CHECK_OK(
      service.ImportDataset("demo", rafiki::data::MakeSyntheticTask(task))
          .status());
  std::printf("dataset=demo\n");

  // Auto-deploy a hand-built identity-ish MLP (kInputDim -> kClasses) from
  // a PS checkpoint, so the serving surface is live without training first.
  rafiki::ps::ModelCheckpoint ckpt;
  rafiki::Tensor weight({kInputDim, kClasses});
  for (int64_t i = 0; i < kClasses; ++i) weight.at2(i, i) = 1.0f;
  ckpt.params.emplace_back("fc0/weight", weight);
  ckpt.params.emplace_back("fc0/bias", rafiki::Tensor({1, kClasses}));
  ckpt.meta.accuracy = 0.9;
  RAFIKI_CHECK_OK(
      service.parameter_server().PutModel("serve/builtin/best", ckpt));
  rafiki::api::ModelHandle handle;
  handle.scope = "serve/builtin/best";
  handle.model_name = "mlp";
  handle.accuracy = 0.9;
  rafiki::serving::RuntimeOptions serve_opts;
  if (tau_ms > 0) {
    serve_opts.tau = static_cast<double>(tau_ms) / 1000.0;
    serve_opts.expire_overdue = true;
  }
  if (policy == "rl") {
    serve_opts.policy_factory = rafiki::serving::MakeRlSchedulerFactory();
  }
  serve_opts.max_replicas = static_cast<int>(replicas);
  if (autoscale) {
    serve_opts.autoscale = true;
    serve_opts.replicas = 1;
    serve_opts.min_replicas = 1;
    serve_opts.autoscale_dwell = 0.1;
  } else {
    serve_opts.replicas = static_cast<int>(replicas);
  }
  auto deployed = service.Deploy({handle}, serve_opts);
  RAFIKI_CHECK_OK(deployed.status());
  std::printf("infer_job=%s input_dim=%lld policy=%s replicas=%lld "
              "autoscale=%d\n",
              deployed->c_str(), static_cast<long long>(kInputDim),
              policy.c_str(), static_cast<long long>(replicas),
              autoscale ? 1 : 0);

  rafiki::api::Gateway gateway(&service);
  rafiki::net::HttpServerOptions opts;
  opts.port = port;
  opts.num_workers = workers;
  opts.num_handler_threads = handlers;
  opts.max_inflight = max_inflight;
  // The handler is built before the server it reports on, so the metrics
  // route's gauge source goes through a late-bound pointer cell.
  auto server_cell = std::make_shared<rafiki::net::HttpServer*>(nullptr);
  rafiki::api::ServerStatsFn server_stats = [server_cell] {
    rafiki::net::HttpServer* server = *server_cell;
    return server ? server->stats() : rafiki::net::HttpServerStats{};
  };
  rafiki::net::HttpServer::AsyncHandler handler;
  if (sync_mode) {
    // Same adapter the server applies internally; chosen here so the mode
    // is visible in one place.
    rafiki::net::HttpServer::Handler sync =
        rafiki::api::MakeGatewayHttpHandler(&gateway, server_stats);
    handler = [sync](const rafiki::net::HttpRequest& request,
                     rafiki::net::HttpServer::ResponseWriter writer) {
      writer.Complete(sync(request));
    };
  } else {
    handler = rafiki::api::MakeGatewayAsyncHttpHandler(&gateway, server_stats);
  }
  rafiki::net::HttpServer server(handler, opts);
  *server_cell = &server;
  RAFIKI_CHECK_OK(server.Start());
  std::printf("listening port=%u workers=%d mode=%s\n", server.port(),
              workers, sync_mode ? "sync" : "async");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("draining...\n");
  std::fflush(stdout);
  server.Stop();
  rafiki::net::HttpServerStats stats = server.stats();
  std::printf(
      "served requests=%llu responses=%llu handled=%llu overload_503=%llu "
      "draining_503=%llu parse_errors=%llu connections=%llu "
      "inflight_peak=%llu\n",
      static_cast<unsigned long long>(stats.requests_total),
      static_cast<unsigned long long>(stats.responses_total),
      static_cast<unsigned long long>(stats.handled),
      static_cast<unsigned long long>(stats.rejected_overload),
      static_cast<unsigned long long>(stats.rejected_draining),
      static_cast<unsigned long long>(stats.parse_errors),
      static_cast<unsigned long long>(stats.accepted_connections),
      static_cast<unsigned long long>(stats.inflight_peak));
  auto metrics = service.InferenceMetrics(*deployed);
  if (metrics.ok()) {
    std::printf(
        "job metrics arrived=%lld processed=%lld expired=%lld "
        "batches=%lld mean_batch=%.3f max_batch=%lld policy=%s "
        "learn_steps=%lld reward=%.3f\n",
        static_cast<long long>(metrics->arrived),
        static_cast<long long>(metrics->processed),
        static_cast<long long>(metrics->expired),
        static_cast<long long>(metrics->batches), metrics->mean_batch,
        static_cast<long long>(metrics->max_batch),
        metrics->policy.c_str(),
        static_cast<long long>(metrics->learn_steps), metrics->reward_sum);
    std::printf(
        "replica metrics replicas=%lld peak=%lld scale_ups=%lld "
        "scale_downs=%lld steals=%lld variant_level=%lld\n",
        static_cast<long long>(metrics->replicas),
        static_cast<long long>(metrics->replicas_peak),
        static_cast<long long>(metrics->scale_ups),
        static_cast<long long>(metrics->scale_downs),
        static_cast<long long>(metrics->steals),
        static_cast<long long>(metrics->variant_level));
    // The books must close after the drain: every arrival is processed,
    // dropped, expired, or still queued (nothing lost, nothing double
    // counted). smoke_serve.sh asserts ok=1.
    bool conserved =
        metrics->arrived == metrics->processed + metrics->dropped +
                                metrics->expired + metrics->queue_depth;
    std::printf(
        "conservation arrived=%lld processed=%lld dropped=%lld "
        "expired=%lld queued=%lld ok=%d\n",
        static_cast<long long>(metrics->arrived),
        static_cast<long long>(metrics->processed),
        static_cast<long long>(metrics->dropped),
        static_cast<long long>(metrics->expired),
        static_cast<long long>(metrics->queue_depth), conserved ? 1 : 0);
  }
  return 0;
}
