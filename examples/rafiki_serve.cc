// rafiki_serve: the real service front door. Wires the Rafiki facade +
// request gateway onto the epoll HTTP server and serves the Figure 18
// surface over actual TCP:
//
//   ./build/examples/rafiki_serve --port=8080
//   curl 'http://127.0.0.1:8080/jobs/<infer>/metrics'
//   curl -d '0,1,0,0' 'http://127.0.0.1:8080/query?job=<infer>'
//
// On startup it imports a synthetic dataset (name "demo", for /train) and
// auto-deploys a small hand-built MLP so /query and /jobs/<id>/metrics work
// immediately; the startup lines
//   dataset=demo
//   infer_job=<id> input_dim=<d>
//   listening port=<p> workers=<n>
// are machine-parseable (scripts/smoke_serve.sh relies on them). SIGINT or
// SIGTERM triggers a graceful drain-then-stop.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/string_util.h"
#include "data/dataset.h"
#include "rafiki/http_gateway.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop = true; }

int64_t FlagInt(int argc, char** argv, const char* name, int64_t fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (rafiki::StartsWith(argv[i], prefix)) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  auto port = static_cast<uint16_t>(FlagInt(argc, argv, "port", 0));
  auto workers = static_cast<int>(FlagInt(argc, argv, "workers", 2));
  auto handlers = static_cast<int>(FlagInt(argc, argv, "handlers", 4));
  auto max_inflight =
      static_cast<size_t>(FlagInt(argc, argv, "max-inflight", 256));
  constexpr int64_t kInputDim = 4;
  constexpr int64_t kClasses = 3;

  rafiki::api::Rafiki service;

  // Dataset for /train over the wire.
  rafiki::data::SyntheticTaskOptions task;
  task.num_classes = 3;
  task.samples_per_class = 50;
  task.input_dim = 8;
  task.separation = 5.0;
  RAFIKI_CHECK_OK(
      service.ImportDataset("demo", rafiki::data::MakeSyntheticTask(task))
          .status());
  std::printf("dataset=demo\n");

  // Auto-deploy a hand-built identity-ish MLP (kInputDim -> kClasses) from
  // a PS checkpoint, so the serving surface is live without training first.
  rafiki::ps::ModelCheckpoint ckpt;
  rafiki::Tensor weight({kInputDim, kClasses});
  for (int64_t i = 0; i < kClasses; ++i) weight.at2(i, i) = 1.0f;
  ckpt.params.emplace_back("fc0/weight", weight);
  ckpt.params.emplace_back("fc0/bias", rafiki::Tensor({1, kClasses}));
  ckpt.meta.accuracy = 0.9;
  RAFIKI_CHECK_OK(
      service.parameter_server().PutModel("serve/builtin/best", ckpt));
  rafiki::api::ModelHandle handle;
  handle.scope = "serve/builtin/best";
  handle.model_name = "mlp";
  handle.accuracy = 0.9;
  auto deployed = service.Deploy({handle});
  RAFIKI_CHECK_OK(deployed.status());
  std::printf("infer_job=%s input_dim=%lld\n", deployed->c_str(),
              static_cast<long long>(kInputDim));

  rafiki::api::Gateway gateway(&service);
  rafiki::net::HttpServerOptions opts;
  opts.port = port;
  opts.num_workers = workers;
  opts.num_handler_threads = handlers;
  opts.max_inflight = max_inflight;
  rafiki::net::HttpServer server(
      rafiki::api::MakeGatewayHttpHandler(&gateway), opts);
  RAFIKI_CHECK_OK(server.Start());
  std::printf("listening port=%u workers=%d\n", server.port(), workers);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("draining...\n");
  std::fflush(stdout);
  server.Stop();
  rafiki::net::HttpServerStats stats = server.stats();
  std::printf(
      "served requests=%llu responses=%llu handled=%llu overload_503=%llu "
      "draining_503=%llu parse_errors=%llu connections=%llu\n",
      static_cast<unsigned long long>(stats.requests_total),
      static_cast<unsigned long long>(stats.responses_total),
      static_cast<unsigned long long>(stats.handled),
      static_cast<unsigned long long>(stats.rejected_overload),
      static_cast<unsigned long long>(stats.rejected_draining),
      static_cast<unsigned long long>(stats.parse_errors),
      static_cast<unsigned long long>(stats.accepted_connections));
  return 0;
}
