// rafiki_rl_experiment: the live Figure 12/13 A/B. Runs the SAME sine load
// (Equations 8-9) over real TCP against two fresh deployments — one under
// the paper's greedy policy (Algorithm 3), one under the §5.2 actor-critic
// scheduler learning online from realized Equation 7 rewards — and emits
// per-window overdue-vs-accuracy lines plus a final reward comparison.
//
//   ./build/examples/rafiki_rl_experiment --rate=450 --period=15
//       --seconds=30 --warmup=30 --tau-ms=40   (one line)
//
// Output (machine-parseable):
//   arm policy=<p> window t=<s> arrived= processed= expired= overdue=
//     reward= accuracy= queue=          (server-side, one line per window)
//   window t=... deadline=...           (client-side loadgen view)
//   arm policy=<p> total reward= peak_reward= overdue= expired= ...
//   ab reward_greedy= reward_rl= peak_greedy= peak_rl= winner=<p>
//
// The warmup phase replays the same sine before the measured phase and is
// excluded from the totals — the RL arm uses it to learn (its learn steps
// carry over; the greedy arm's warmup just equalizes cache/calibration
// state). EXPERIMENTS.md documents the repro settings.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "net/loadgen.h"
#include "rafiki/http_gateway.h"
#include "serving/rl_scheduler.h"
#include "serving/sine_arrival.h"

namespace {

using rafiki::Tensor;

struct Flags {
  double rate = 450.0;       // r* of Equations 8-9
  double period = 15.0;      // sine period T, seconds
  double seconds = 30.0;     // measured duration per arm
  double warmup = 30.0;      // unmeasured learning phase per arm
  double window = 1.0;       // aggregation window, seconds
  int64_t tau_ms = 40;       // serving SLO
  int64_t dim = 16;          // input feature dim
  int64_t hidden = 2048;     // hidden width (drives c(m, b))
  int64_t models = 1;        // 1 = mask collapse (§7.2.1); up to 3
  int64_t connections = 8;   // open-loop client threads
  uint64_t seed = 7;
};

const char* FlagValue(int argc, char** argv, const char* name) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (rafiki::StartsWith(argv[i], prefix)) return argv[i] + prefix.size();
  }
  return nullptr;
}

double FlagDouble(int argc, char** argv, const char* name, double fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? std::atof(v) : fallback;
}

/// One window sampled from the server-side job metrics.
struct ArmWindow {
  double t = 0.0;
  int64_t arrived = 0;
  int64_t processed = 0;
  int64_t expired = 0;
  int64_t overdue = 0;
  double reward = 0.0;
  double accuracy = 0.0;  // mean a(M[v]) over the window's batches
};

struct ArmResult {
  std::string policy;
  std::vector<ArmWindow> windows;
  double reward = 0.0;
  double peak_reward = 0.0;  // reward summed over the high-arrival windows
  int64_t processed = 0;
  int64_t overdue = 0;
  int64_t expired = 0;
  int64_t learn_steps = 0;
  bool conserved = false;
};

/// Deploys `flags.models` MLPs (larger hidden width = slower and more
/// accurate, the paper's catalog shape) and returns the inference job id.
std::string DeployArm(rafiki::api::Rafiki& service, const Flags& flags,
                      const std::string& policy) {
  std::vector<rafiki::api::ModelHandle> handles;
  for (int64_t m = 0; m < flags.models; ++m) {
    int64_t hidden = flags.hidden << m;  // 1x, 2x, 4x
    double accuracy = 0.90 - 0.05 * static_cast<double>(flags.models - 1 - m);
    rafiki::ps::ModelCheckpoint ckpt;
    // fc0 spreads the one-hot input across the hidden layer; fc1 reduces to
    // 3 classes. Weights are deterministic and non-zero so the forward pass
    // costs what a real MLP of this width costs.
    Tensor w0({flags.dim, hidden});
    for (int64_t i = 0; i < flags.dim; ++i) {
      for (int64_t j = 0; j < hidden; ++j) {
        w0.at2(i, j) = 0.01f * static_cast<float>((i + j) % 7);
      }
    }
    Tensor w1({hidden, 3});
    for (int64_t i = 0; i < hidden; ++i) {
      w1.at2(i, i % 3) = 0.1f;
    }
    ckpt.params.emplace_back("fc0/weight", w0);
    ckpt.params.emplace_back("fc0/bias", Tensor({1, hidden}));
    ckpt.params.emplace_back("fc1/weight", w1);
    ckpt.params.emplace_back("fc1/bias", Tensor({1, 3}));
    ckpt.meta.accuracy = accuracy;
    std::string scope =
        rafiki::StrFormat("rl_experiment/m%lld/best", static_cast<long long>(m));
    RAFIKI_CHECK_OK(service.parameter_server().PutModel(scope, ckpt));
    rafiki::api::ModelHandle handle;
    handle.scope = scope;
    handle.model_name = rafiki::StrFormat("mlp%lld", static_cast<long long>(m));
    handle.accuracy = accuracy;
    handles.push_back(handle);
  }

  rafiki::serving::RuntimeOptions options;
  options.tau = static_cast<double>(flags.tau_ms) / 1000.0;
  options.expire_overdue = true;
  if (policy == "rl") {
    rafiki::serving::RlSchedulerOptions rl;
    rl.agent.seed = flags.seed;
    options.policy_factory = rafiki::serving::MakeRlSchedulerFactory(rl);
  }
  auto deployed = service.Deploy(handles, options);
  RAFIKI_CHECK_OK(deployed.status());
  return *deployed;
}

ArmResult RunArm(const Flags& flags, const std::string& policy) {
  rafiki::api::Rafiki service;
  std::string job = DeployArm(service, flags, policy);

  rafiki::api::Gateway gateway(&service);
  rafiki::net::HttpServerOptions server_opts;
  server_opts.port = 0;  // ephemeral
  server_opts.num_workers = 2;
  server_opts.num_handler_threads = 2;
  server_opts.max_inflight = 8192;
  rafiki::net::HttpServer server(
      rafiki::api::MakeGatewayAsyncHttpHandler(&gateway), server_opts);
  RAFIKI_CHECK_OK(server.Start());

  std::string body = "1";
  for (int64_t i = 1; i < flags.dim; ++i) body += ",0";
  rafiki::net::LoadGenOptions load;
  load.port = server.port();
  load.method = "POST";
  load.target = "/jobs/" + job + "/query";
  load.body = body;
  load.target_rate = flags.rate;
  load.sine_period = flags.period;
  load.connections = static_cast<int>(flags.connections);
  load.tau = static_cast<double>(flags.tau_ms) / 1000.0;
  load.window_seconds = flags.window;
  load.seed = flags.seed;

  // Unmeasured warmup over the same sine: the RL arm learns here.
  if (flags.warmup > 0.0) {
    load.duration_seconds = flags.warmup;
    rafiki::net::RunLoadGen(load);
  }
  auto base = service.InferenceMetrics(job);
  RAFIKI_CHECK_OK(base.status());

  // Server-side sampler: one overdue-vs-accuracy line per window.
  ArmResult result;
  result.policy = policy;
  std::atomic<bool> sampling{true};
  std::thread sampler([&] {
    auto prev = *base;
    double t = 0.0;
    while (sampling.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::duration<double>(flags.window));
      auto now = service.InferenceMetrics(job);
      if (!now.ok()) break;
      t += flags.window;
      ArmWindow w;
      w.t = t;
      w.arrived = now->arrived - prev.arrived;
      w.processed = now->processed - prev.processed;
      w.expired = now->expired - prev.expired;
      w.overdue = now->overdue - prev.overdue;
      w.reward = now->reward_sum - prev.reward_sum;
      w.accuracy = w.processed > 0
                       ? (now->accuracy_sum - prev.accuracy_sum) /
                             static_cast<double>(w.processed)
                       : 0.0;
      std::printf(
          "arm policy=%s window t=%.0f arrived=%lld processed=%lld "
          "expired=%lld overdue=%lld reward=%.1f accuracy=%.4f queue=%lld\n",
          policy.c_str(), w.t, static_cast<long long>(w.arrived),
          static_cast<long long>(w.processed),
          static_cast<long long>(w.expired),
          static_cast<long long>(w.overdue), w.reward, w.accuracy,
          static_cast<long long>(now->queue_depth));
      result.windows.push_back(w);
      prev = *now;
    }
  });

  load.duration_seconds = flags.seconds;
  load.seed = flags.seed + 1;  // fresh noise, same sine
  rafiki::net::LoadGenReport report = rafiki::net::RunLoadGen(load);
  sampling.store(false, std::memory_order_relaxed);
  sampler.join();
  std::printf("%s", report.ToString().c_str());

  server.Stop();
  auto final_metrics = service.InferenceMetrics(job);
  RAFIKI_CHECK_OK(final_metrics.status());
  result.reward = final_metrics->reward_sum - base->reward_sum;
  result.processed = final_metrics->processed - base->processed;
  result.overdue = final_metrics->overdue - base->overdue;
  result.expired = final_metrics->expired - base->expired;
  result.learn_steps = final_metrics->learn_steps;
  result.conserved =
      final_metrics->arrived ==
      final_metrics->processed + final_metrics->dropped +
          final_metrics->expired + final_metrics->queue_depth;

  // "Overload peak" = the windows the SCHEDULE put above r* (Equation 8's
  // fifth of each cycle). Membership comes from the noise-free sine, not
  // from observed arrivals: a slow arm back-pressures the open-loop client
  // on this shared core and would otherwise flatten its own peak out of
  // existence, making the arms incomparable.
  rafiki::serving::SineArrivalProcess schedule(flags.rate, flags.period,
                                               flags.seed,
                                               /*noise_stddev=*/0.0);
  for (const ArmWindow& w : result.windows) {
    double midpoint = w.t - flags.window / 2.0;
    if (schedule.Rate(midpoint) >= flags.rate) {
      result.peak_reward += w.reward;
    }
  }
  std::printf(
      "arm policy=%s total reward=%.1f peak_reward=%.1f processed=%lld "
      "overdue=%lld expired=%lld learn_steps=%lld conservation_ok=%d\n",
      policy.c_str(), result.reward, result.peak_reward,
      static_cast<long long>(result.processed),
      static_cast<long long>(result.overdue),
      static_cast<long long>(result.expired),
      static_cast<long long>(result.learn_steps), result.conserved ? 1 : 0);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.rate = FlagDouble(argc, argv, "rate", flags.rate);
  flags.period = FlagDouble(argc, argv, "period", flags.period);
  flags.seconds = FlagDouble(argc, argv, "seconds", flags.seconds);
  flags.warmup = FlagDouble(argc, argv, "warmup", flags.warmup);
  flags.window = FlagDouble(argc, argv, "window", flags.window);
  flags.tau_ms =
      static_cast<int64_t>(FlagDouble(argc, argv, "tau-ms", 40));
  flags.dim = static_cast<int64_t>(FlagDouble(argc, argv, "dim", 16));
  flags.hidden =
      static_cast<int64_t>(FlagDouble(argc, argv, "hidden", 2048));
  flags.models = static_cast<int64_t>(FlagDouble(argc, argv, "models", 1));
  flags.connections =
      static_cast<int64_t>(FlagDouble(argc, argv, "connections", 8));
  flags.seed = static_cast<uint64_t>(FlagDouble(argc, argv, "seed", 7));
  if (flags.models < 1 || flags.models > 3) {
    std::fprintf(stderr, "--models must be 1..3\n");
    return 2;
  }

  std::printf(
      "rl_experiment rate=%.0f period=%.0f seconds=%.0f warmup=%.0f "
      "tau_ms=%lld dim=%lld hidden=%lld models=%lld seed=%llu\n",
      flags.rate, flags.period, flags.seconds, flags.warmup,
      static_cast<long long>(flags.tau_ms),
      static_cast<long long>(flags.dim),
      static_cast<long long>(flags.hidden),
      static_cast<long long>(flags.models),
      static_cast<unsigned long long>(flags.seed));

  ArmResult greedy = RunArm(flags, "greedy");
  ArmResult rl = RunArm(flags, "rl");

  const char* winner = rl.reward >= greedy.reward ? "rl" : "greedy";
  std::printf(
      "ab reward_greedy=%.1f reward_rl=%.1f peak_greedy=%.1f peak_rl=%.1f "
      "winner=%s\n",
      greedy.reward, rl.reward, greedy.peak_reward, rl.peak_reward, winner);
  return greedy.conserved && rl.conserved ? 0 : 1;
}
