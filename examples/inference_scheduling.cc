// Domain example 3: the inference service's scheduling layer on its own.
// Deploys the paper's 3-ConvNet ensemble behind a latency SLO and compares
// three schedulers on the same sine-modulated request stream:
//   * sync-all-models greedy (max accuracy baseline),
//   * async no-ensemble greedy (max throughput baseline),
//   * the RL scheduler that picks model subsets AND batch sizes.
//
// Run: ./build/examples/example_inference_scheduling

#include <cstdio>

#include "model/prediction_sim.h"
#include "model/profile.h"
#include "model/registry.h"
#include "serving/greedy_batch.h"
#include "serving/rl_scheduler.h"
#include "serving/simulator.h"
#include "serving/sine_arrival.h"

int main() {
  using namespace rafiki;  // NOLINT

  // Model selection (§4.1): pick 3 accurate-but-diverse architectures
  // from the task registry... then override with the paper's exact set so
  // the numbers line up with §7.2.2.
  model::TaskRegistry registry = model::TaskRegistry::BuiltIn();
  auto diverse = registry.SelectDiverse("ImageClassification", 3);
  RAFIKI_CHECK_OK(diverse.status());
  std::printf("registry's diverse pick: ");
  for (const auto& m : *diverse) std::printf("%s ", m.name.c_str());
  std::printf("\npaper's set: inception_v3 inception_v4 "
              "inception_resnet_v2\n\n");

  std::vector<model::ModelProfile> models{
      model::FindProfile("inception_v3").value(),
      model::FindProfile("inception_v4").value(),
      model::FindProfile("inception_resnet_v2").value()};
  model::EnsembleAccuracyTable table(models, model::PredictionSimOptions{},
                                     20000);
  std::printf("surrogate ensemble accuracies: v3=%.3f v4=%.3f ir2=%.3f "
              "all=%.3f\n\n",
              table.Accuracy(0b001), table.Accuracy(0b010),
              table.Accuracy(0b100), table.Accuracy(0b111));

  serving::ServingSimOptions options;
  options.tau = 0.56;
  options.duration_seconds = 600.0;
  const double rate = 250.0;  // between r_l=128 and r_u=578
  const double period = 500.0 * options.tau;

  auto report = [](const char* name,
                   const serving::ServingMetrics& metrics) {
    std::printf("%-22s processed=%7lld overdue=%6.2f%% accuracy=%.4f "
                "latency=%.3fs\n",
                name, static_cast<long long>(metrics.total_processed),
                100.0 * metrics.OverdueFraction(), metrics.mean_accuracy,
                metrics.mean_latency);
  };

  {
    serving::ServingSimulator sim(models, &table, options);
    serving::SineArrivalProcess arrivals(rate, period, 1);
    serving::SyncEnsembleGreedyPolicy policy;
    report("sync-all greedy", sim.Run(policy, arrivals));
  }
  {
    serving::ServingSimulator sim(models, &table, options);
    serving::SineArrivalProcess arrivals(rate, period, 1);
    serving::AsyncNoEnsemblePolicy policy;
    report("async no-ensemble", sim.Run(policy, arrivals));
  }
  {
    serving::RlSchedulerOptions rl_options;
    rl_options.beta = 1.0;
    serving::RlSchedulerPolicy rl(3, options.batch_sizes, &table,
                                  rl_options);
    // Train online for a while, then measure.
    serving::ServingSimOptions train = options;
    train.duration_seconds = 4000.0;
    serving::ServingSimulator train_sim(models, &table, train);
    serving::SineArrivalProcess train_arrivals(rate, period, 2);
    train_sim.Run(rl, train_arrivals);
    serving::ServingSimulator sim(models, &table, options);
    serving::SineArrivalProcess arrivals(rate, period, 1);
    report("rl scheduler", sim.Run(rl, arrivals));
  }

  std::printf("\nAt %.0f req/s the sync ensemble (capacity 128/s) drowns, "
              "the async baseline keeps up at single-model accuracy, and "
              "RL finds the middle ground: ensembles when the sine is low, "
              "sheds models when it peaks.\n", rate);
  return 0;
}
