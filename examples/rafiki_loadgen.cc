// rafiki_loadgen: replay the paper's sine request process (Equations 8-9)
// against a live rafiki_serve over real TCP, open- or closed-loop, and
// report windowed arrived/completed/overdue/rejected/dropped plus latency
// percentiles.
//
//   ./build/examples/rafiki_loadgen --port=8080 --target=/jobs/i0/metrics \
//       --rate=500 --duration=10 --period=60
//   ./build/examples/rafiki_loadgen --port=8080 --closed --connections=8
//
// --fail-on-error makes a non-zero exit when any request failed with a
// transport error or an unexpected status (CI smoke uses this). 503
// (overload shed) and 504 (queue deadline) are load outcomes, not errors;
// they are reported as rejected= and deadline=.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "net/loadgen.h"

namespace {

const char* FlagValue(int argc, char** argv, const char* name) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (rafiki::StartsWith(argv[i], prefix)) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool FlagSet(int argc, char** argv, const char* name) {
  std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

double FlagDouble(int argc, char** argv, const char* name, double fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? std::atof(v) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  rafiki::net::LoadGenOptions opts;
  const char* host = FlagValue(argc, argv, "host");
  if (host != nullptr) opts.host = host;
  opts.port = static_cast<uint16_t>(FlagDouble(argc, argv, "port", 0));
  if (opts.port == 0) {
    std::fprintf(stderr,
                 "usage: rafiki_loadgen --port=N [--host=H] [--target=/path]\n"
                 "  [--method=GET|POST] [--body=...] [--rate=R] [--period=T]\n"
                 "  [--duration=S] [--connections=C] [--tau=S] [--window=S]\n"
                 "  [--noise=SD] [--seed=N] [--closed] [--pipeline=D]\n"
                 "  [--fail-on-error]\n");
    return 2;
  }
  const char* target = FlagValue(argc, argv, "target");
  if (target != nullptr) opts.target = target;
  const char* method = FlagValue(argc, argv, "method");
  if (method != nullptr) opts.method = method;
  const char* body = FlagValue(argc, argv, "body");
  if (body != nullptr) opts.body = body;
  opts.open_loop = !FlagSet(argc, argv, "closed");
  opts.duration_seconds = FlagDouble(argc, argv, "duration", 5.0);
  opts.target_rate = FlagDouble(argc, argv, "rate", 500.0);
  opts.sine_period = FlagDouble(argc, argv, "period", 60.0);
  opts.noise_stddev = FlagDouble(argc, argv, "noise", 0.1);
  opts.connections =
      static_cast<int>(FlagDouble(argc, argv, "connections", 4));
  opts.pipeline = static_cast<int>(FlagDouble(argc, argv, "pipeline", 1));
  opts.tau = FlagDouble(argc, argv, "tau", 0.1);
  opts.window_seconds = FlagDouble(argc, argv, "window", 1.0);
  opts.seed = static_cast<uint64_t>(FlagDouble(argc, argv, "seed", 1));

  rafiki::net::LoadGenReport report = rafiki::net::RunLoadGen(opts);
  std::printf("%s", report.ToString().c_str());

  if (report.arrived != report.completed + report.errors + report.dropped) {
    std::fprintf(stderr, "conservation violated: arrived != completed + "
                         "errors + dropped\n");
    return 1;
  }
  if (FlagSet(argc, argv, "fail-on-error") && report.errors > 0) {
    std::fprintf(stderr, "%lld requests failed\n",
                 static_cast<long long>(report.errors));
    return 1;
  }
  return 0;
}
